//! Cross-session reference-frame cache.
//!
//! Reference renders are the expensive, batchable resource of a SPARW
//! serving system; warped target frames are cheap. Sessions co-located in the
//! same scene request references at nearby poses, so a pose-quantized cache
//! lets one full NeRF render seed the warp sources of many sessions — the
//! multi-tenant generalization of the paper's single-client reference reuse.

use crate::error::ServeError;
use cicero_accel::FrameWorkload;
use cicero_math::{Intrinsics, Pose};
use cicero_scene::ground_truth::Frame;
use std::collections::HashMap;
use std::sync::Arc;

use cicero_telemetry as telemetry;

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct RefCacheConfig {
    /// Maximum cached references before LRU eviction.
    pub capacity: usize,
    /// Position quantization step (world units). Poses within the same cell
    /// share an entry.
    pub pos_quantum: f32,
    /// Rotation quantization step (unit-quaternion components).
    pub rot_quantum: f32,
}

impl Default for RefCacheConfig {
    fn default() -> Self {
        RefCacheConfig {
            capacity: 128,
            pos_quantum: 0.05,
            rot_quantum: 0.02,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct RefCacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that required a fresh render.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries inserted speculatively by a prefetch policy
    /// ([`insert_prefetched`](RefCache::insert_prefetched)); zero under the
    /// default (demand-only) scheduler.
    pub prefetch_inserts: u64,
    /// Lookups satisfied by a prefetched entry.
    pub prefetch_hits: u64,
    /// Prefetched entries that never served a lookup: evicted (or
    /// overwritten) unused, plus entries still sitting unused at snapshot
    /// time. `prefetch_inserts - prefetch_wasted` is the number of
    /// speculative renders that paid off.
    pub prefetch_wasted: u64,
}

/// One cached reference render.
#[derive(Debug, Clone)]
pub struct CachedReference {
    /// The exact pose the frame was rendered at (not the quantized key).
    pub pose: Pose,
    /// The rendered reference frame (color + depth), shared: every session
    /// warping from this entry holds the same allocation, not a copy.
    pub frame: Arc<Frame>,
    /// The full-render workload, for pricing installs.
    pub workload: FrameWorkload,
    /// Simulated time the producing render completes; consumers cannot warp
    /// from this reference earlier.
    pub available_at_s: f64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    scene: String,
    width: usize,
    height: usize,
    /// Focal length and principal point in milli-pixels: frames rendered
    /// with a different FoV are not geometrically interchangeable even at
    /// the same resolution.
    qfocal: [i32; 3],
    qpos: [i32; 3],
    qrot: [i32; 4],
}

/// One cache slot: the shared entry plus LRU/prefetch bookkeeping.
#[derive(Debug)]
struct Slot {
    used: u64,
    /// Inserted speculatively, and whether a lookup ever hit it.
    prefetched: bool,
    hit: bool,
    entry: Arc<CachedReference>,
}

/// A pose-quantized LRU cache of reference renders, shared across sessions.
#[derive(Debug, Default)]
pub struct RefCache {
    cfg: RefCacheConfig,
    entries: HashMap<CacheKey, Slot>,
    tick: u64,
    stats: RefCacheStats,
}

impl RefCache {
    /// Creates an empty cache.
    pub fn new(cfg: RefCacheConfig) -> Self {
        RefCache {
            cfg,
            entries: HashMap::new(),
            tick: 0,
            stats: RefCacheStats::default(),
        }
    }

    fn key(&self, scene: &str, intrinsics: Intrinsics, pose: &Pose, sign: f32) -> CacheKey {
        let qp = self.cfg.pos_quantum.max(1e-6);
        let qr = self.cfg.rot_quantum.max(1e-6);
        CacheKey {
            scene: scene.to_string(),
            width: intrinsics.width,
            height: intrinsics.height,
            qfocal: [
                (intrinsics.focal * 1e3).round() as i32,
                (intrinsics.cx * 1e3).round() as i32,
                (intrinsics.cy * 1e3).round() as i32,
            ],
            qpos: [
                (pose.position.x / qp).round() as i32,
                (pose.position.y / qp).round() as i32,
                (pose.position.z / qp).round() as i32,
            ],
            qrot: [
                (sign * pose.rotation.w / qr).round() as i32,
                (sign * pose.rotation.x / qr).round() as i32,
                (sign * pose.rotation.y / qr).round() as i32,
                (sign * pose.rotation.z / qr).round() as i32,
            ],
        }
    }

    /// The quantized cell a freshly rendered `pose` would be inserted under
    /// (`sign == 1.0`), or the mirrored probe cell (`sign == -1.0`). The
    /// scheduler uses these to recognize, *within one dispatch batch*, that
    /// two sessions plan the same reference before either has rendered it.
    pub(crate) fn cell(
        &self,
        scene: &str,
        intrinsics: Intrinsics,
        pose: &Pose,
        sign: f32,
    ) -> CacheKey {
        self.key(scene, intrinsics, pose, sign)
    }

    /// Looks up a reference near `pose` for `scene` at `intrinsics`'
    /// resolution, counting a hit or miss.
    ///
    /// A quaternion and its negation are the same rotation, and no sign
    /// canonicalization is stable for every pose (w is zero at 180°,
    /// the argmax component flips when two magnitudes tie), so lookups
    /// probe both signs instead.
    pub fn lookup(
        &mut self,
        scene: &str,
        intrinsics: Intrinsics,
        pose: &Pose,
    ) -> Option<Arc<CachedReference>> {
        self.tick += 1;
        for sign in [1.0, -1.0] {
            let key = self.key(scene, intrinsics, pose, sign);
            if let Some(slot) = self.entries.get_mut(&key) {
                slot.used = self.tick;
                slot.hit = true;
                self.stats.hits += 1;
                if slot.prefetched {
                    self.stats.prefetch_hits += 1;
                }
                telemetry::instant(telemetry::Phase::CacheHit, slot.prefetched as u64, 0);
                telemetry::add(telemetry::Counter::CacheHits, 1);
                return Some(slot.entry.clone());
            }
        }
        self.stats.misses += 1;
        telemetry::instant(telemetry::Phase::CacheMiss, 0, 0);
        telemetry::add(telemetry::Counter::CacheMisses, 1);
        None
    }

    /// Whether a reference near `pose` is cached, **without** touching the
    /// hit/miss counters or LRU order. Prefetch planning probes with this so
    /// speculation never perturbs the demand statistics.
    pub fn peek(&self, scene: &str, intrinsics: Intrinsics, pose: &Pose) -> bool {
        [1.0f32, -1.0].iter().any(|&sign| {
            self.entries
                .contains_key(&self.key(scene, intrinsics, pose, sign))
        })
    }

    /// Inserts a freshly rendered reference, evicting the least recently used
    /// entry when at capacity.
    pub fn insert(&mut self, scene: &str, intrinsics: Intrinsics, entry: CachedReference) {
        self.insert_impl(scene, intrinsics, entry, false);
    }

    /// Inserts a **speculatively** rendered reference (prefetch policy),
    /// tracked separately so the report can account prefetch hits vs waste.
    pub fn insert_prefetched(
        &mut self,
        scene: &str,
        intrinsics: Intrinsics,
        entry: CachedReference,
    ) {
        self.insert_impl(scene, intrinsics, entry, true);
    }

    /// Drops `slot`, folding an unused prefetched entry into the waste
    /// counter.
    fn retire(stats: &mut RefCacheStats, slot: &Slot) {
        if slot.prefetched && !slot.hit {
            stats.prefetch_wasted += 1;
        }
    }

    fn insert_impl(
        &mut self,
        scene: &str,
        intrinsics: Intrinsics,
        entry: CachedReference,
        prefetched: bool,
    ) {
        if self.cfg.capacity == 0 {
            return;
        }
        let key = self.key(scene, intrinsics, &entry.pose, 1.0);
        if self.entries.len() >= self.cfg.capacity && !self.entries.contains_key(&key) {
            // At capacity the cache is necessarily non-empty, so the LRU
            // eviction cannot fail here; an `Err` would mean a bookkeeping
            // bug, and inserting anyway (one entry over budget) degrades far
            // more gracefully than panicking mid-serve.
            let _ = self.evict_lru();
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            Slot {
                used: self.tick,
                prefetched,
                hit: false,
                entry: Arc::new(entry),
            },
        ) {
            Self::retire(&mut self.stats, &old);
        }
        self.stats.inserts += 1;
        if prefetched {
            self.stats.prefetch_inserts += 1;
            telemetry::instant(telemetry::Phase::CachePrefetch, 0, 0);
            telemetry::add(telemetry::Counter::CachePrefetchInserts, 1);
        }
    }

    /// Evicts the least-recently-used entry, or reports
    /// [`ServeError::EmptyEviction`] when there is nothing to evict —
    /// the one cache operation that used to `expect` its way through.
    pub fn evict_lru(&mut self) -> Result<(), ServeError> {
        let oldest = self
            .entries
            .iter()
            .min_by_key(|(_, slot)| slot.used)
            .map(|(k, _)| k.clone())
            .ok_or(ServeError::EmptyEviction)?;
        if let Some(slot) = self.entries.remove(&oldest) {
            Self::retire(&mut self.stats, &slot);
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Removes the entry covering `pose` (either quaternion sign), if any —
    /// the fault injector's "corruption detected at lookup" hook. Returns
    /// whether an entry was removed. Does not count as an LRU eviction;
    /// an unused prefetched victim still retires as waste.
    pub fn invalidate(&mut self, scene: &str, intrinsics: Intrinsics, pose: &Pose) -> bool {
        for sign in [1.0, -1.0] {
            let key = self.key(scene, intrinsics, pose, sign);
            if let Some(slot) = self.entries.remove(&key) {
                Self::retire(&mut self.stats, &slot);
                return true;
            }
        }
        false
    }

    /// The closest compatible cached reference to `pose` within the given
    /// position/rotation radii, ignoring quantization cells — the recovery
    /// ladder's stale-warp rung. Counter- and LRU-free like
    /// [`peek`](Self::peek).
    ///
    /// Selection is a **total-order minimum** over (position error, rotation
    /// error, quantized pose key), never map iteration order, so the choice
    /// is bit-identical across processes and host thread budgets.
    pub fn best_within(
        &self,
        scene: &str,
        intrinsics: Intrinsics,
        pose: &Pose,
        pos_radius: f32,
        rot_radius: f32,
    ) -> Option<Arc<CachedReference>> {
        let proto = self.key(scene, intrinsics, pose, 1.0);
        let mut best: Option<(f32, f32, &CacheKey, &Slot)> = None;
        for (key, slot) in &self.entries {
            if key.scene != proto.scene
                || key.width != proto.width
                || key.height != proto.height
                || key.qfocal != proto.qfocal
            {
                continue;
            }
            let pos_err = (slot.entry.pose.position - pose.position).length();
            let rot_err = slot.entry.pose.rotation.angle_to(pose.rotation);
            if pos_err > pos_radius || rot_err > rot_radius {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bp, br, bk, _)) => pos_err
                    .total_cmp(bp)
                    .then(rot_err.total_cmp(br))
                    .then(key.qpos.cmp(&bk.qpos))
                    .then(key.qrot.cmp(&bk.qrot))
                    .is_lt(),
            };
            if better {
                best = Some((pos_err, rot_err, key, slot));
            }
        }
        best.map(|(_, _, _, slot)| slot.entry.clone())
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot. `prefetch_wasted` counts retired-unused entries
    /// plus the prefetched entries currently live but never hit, so a
    /// snapshot always satisfies
    /// `prefetch_inserts == useful + prefetch_wasted` for some `useful ≥ 0`.
    pub fn stats(&self) -> RefCacheStats {
        let mut stats = self.stats;
        stats.prefetch_wasted += self
            .entries
            .values()
            .filter(|s| s.prefetched && !s.hit)
            .count() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_math::Vec3;

    fn entry(pose: Pose) -> CachedReference {
        CachedReference {
            pose,
            frame: Arc::new(Frame {
                color: cicero_math::RgbImage::new(4, 4, Vec3::ZERO),
                depth: cicero_math::DepthMap::new(4, 4, f32::INFINITY),
            }),
            workload: FrameWorkload::default(),
            available_at_s: 0.0,
        }
    }

    fn pose(x: f32) -> Pose {
        Pose::look_at(Vec3::new(x, 0.0, -3.0), Vec3::ZERO, Vec3::Y)
    }

    #[test]
    fn nearby_poses_share_an_entry() {
        let mut c = RefCache::new(RefCacheConfig::default());
        let k = Intrinsics::from_fov(8, 8, 0.9);
        c.insert("lego", k, entry(pose(0.0)));
        // Same cell: offset below half the position quantum.
        assert!(c.lookup("lego", k, &pose(0.004)).is_some());
        // Different scene, resolution or focal length: miss.
        assert!(c.lookup("ship", k, &pose(0.0)).is_none());
        assert!(c
            .lookup("lego", Intrinsics::from_fov(16, 16, 0.9), &pose(0.0))
            .is_none());
        assert!(c
            .lookup("lego", Intrinsics::from_fov(8, 8, 1.4), &pose(0.0))
            .is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn negated_quaternions_share_an_entry() {
        let mut c = RefCache::new(RefCacheConfig::default());
        let k = Intrinsics::from_fov(8, 8, 0.9);
        // 180° about Y: w == 0, the case where w-based sign canonicalization
        // breaks; the dual-sign probe must still find the entry.
        let mut p = pose(0.0);
        p.rotation = cicero_math::Quat {
            w: 0.0,
            x: 0.0,
            y: 1.0,
            z: 0.0,
        };
        let mut n = p;
        n.rotation = cicero_math::Quat {
            w: -0.0,
            x: -0.0,
            y: -1.0,
            z: -0.0,
        };
        c.insert("s", k, entry(p));
        assert!(c.lookup("s", k, &n).is_some(), "q and -q must share a key");
    }

    #[test]
    fn prefetch_hits_and_waste_are_accounted() {
        let mut c = RefCache::new(RefCacheConfig::default());
        let k = Intrinsics::from_fov(8, 8, 0.9);
        c.insert_prefetched("s", k, entry(pose(0.0)));
        c.insert_prefetched("s", k, entry(pose(1.0)));
        // peek never perturbs counters.
        assert!(c.peek("s", k, &pose(0.0)));
        assert!(!c.peek("s", k, &pose(5.0)));
        assert_eq!(c.stats().hits + c.stats().misses, 0);
        // One prefetched entry consumed, one never used.
        assert!(c.lookup("s", k, &pose(0.0)).is_some());
        let s = c.stats();
        assert_eq!(s.prefetch_inserts, 2);
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.prefetch_wasted, 1);
        // A demand insert overwriting the unused prefetch retires it as
        // waste permanently.
        c.insert("s", k, entry(pose(1.0)));
        assert!(c.lookup("s", k, &pose(1.0)).is_some());
        let s = c.stats();
        assert_eq!(s.prefetch_wasted, 1);
        assert_eq!(s.prefetch_hits, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = RefCache::new(RefCacheConfig {
            capacity: 2,
            ..Default::default()
        });
        let k = Intrinsics::from_fov(8, 8, 0.9);
        c.insert("s", k, entry(pose(0.0)));
        c.insert("s", k, entry(pose(1.0)));
        assert!(c.lookup("s", k, &pose(0.0)).is_some()); // refresh 0.0
        c.insert("s", k, entry(pose(2.0))); // evicts 1.0
        assert!(c.lookup("s", k, &pose(1.0)).is_none());
        assert!(c.lookup("s", k, &pose(0.0)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_eviction_is_an_error_not_a_panic() {
        let mut c = RefCache::new(RefCacheConfig::default());
        assert_eq!(c.evict_lru(), Err(crate::ServeError::EmptyEviction));
        assert_eq!(c.stats().evictions, 0);
        let k = Intrinsics::from_fov(8, 8, 0.9);
        c.insert("s", k, entry(pose(0.0)));
        assert_eq!(c.evict_lru(), Ok(()));
        assert!(c.is_empty());
        assert_eq!(c.stats().evictions, 1);
        // Draining leaves the cache empty again: the edge is reachable twice.
        assert_eq!(c.evict_lru(), Err(crate::ServeError::EmptyEviction));
    }

    #[test]
    fn invalidate_removes_either_sign_without_counting_eviction() {
        let mut c = RefCache::new(RefCacheConfig::default());
        let k = Intrinsics::from_fov(8, 8, 0.9);
        c.insert("s", k, entry(pose(0.0)));
        assert!(!c.invalidate("s", k, &pose(5.0)), "nothing there");
        assert!(c.invalidate("s", k, &pose(0.004)), "same cell");
        assert!(c.is_empty());
        assert_eq!(c.stats().evictions, 0);
        assert!(c.lookup("s", k, &pose(0.0)).is_none());
    }

    #[test]
    fn best_within_picks_the_nearest_compatible_entry() {
        let mut c = RefCache::new(RefCacheConfig::default());
        let k = Intrinsics::from_fov(8, 8, 0.9);
        c.insert("s", k, entry(pose(0.6)));
        c.insert("s", k, entry(pose(0.2)));
        c.insert("other", k, entry(pose(0.0)));
        let hit = c
            .best_within("s", k, &pose(0.0), 1.0, 1.0)
            .expect("two entries in radius");
        assert_eq!(hit.pose.position, pose(0.2).position);
        // Radius gates both errors; incompatible scenes never match.
        assert!(c.best_within("s", k, &pose(0.0), 0.05, 1.0).is_none());
        assert!(c.best_within("missing", k, &pose(0.2), 1.0, 1.0).is_none());
        // Counter-free, like peek.
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }

    #[test]
    fn best_within_on_an_empty_cache_is_none() {
        let c = RefCache::new(RefCacheConfig::default());
        let k = Intrinsics::from_fov(8, 8, 0.9);
        assert!(c
            .best_within("s", k, &pose(0.0), f32::MAX, f32::MAX)
            .is_none());
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }

    #[test]
    fn best_within_breaks_exact_ties_by_key_order() {
        // Two entries mirrored about the probe with *identical* rotations:
        // position and rotation errors are bitwise equal, so only the final
        // quantized-key tie-break can decide — and it must decide the same
        // way regardless of insertion order (the fleet's failover warmth
        // probe feeds routing, so a flapping winner would flap placement).
        let probe = pose(0.0);
        let mirrored = |x: f32| {
            let mut p = probe;
            p.position = cicero_math::Vec3::new(x, 0.0, -3.0);
            p
        };
        let k = Intrinsics::from_fov(8, 8, 0.9);
        let winner = |first: f32, second: f32| {
            let mut c = RefCache::new(RefCacheConfig::default());
            c.insert("s", k, entry(mirrored(first)));
            c.insert("s", k, entry(mirrored(second)));
            c.best_within("s", k, &probe, 1.0, 1.0)
                .expect("both mirrored entries are in radius")
                .pose
                .position
        };
        let a = winner(-0.5, 0.5);
        let b = winner(0.5, -0.5);
        assert_eq!(a, b, "tie winner must not depend on insertion order");
        // Key order is the tiebreak: the lexicographically smaller quantized
        // position (the −x entry) wins.
        assert_eq!(a, mirrored(-0.5).position);
    }
}
