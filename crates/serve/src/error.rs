//! The serve-side error type: every fallible server path returns
//! [`ServeError`] instead of panicking, so a production deployment can
//! degrade, retry or surface the failure rather than die.

use crate::admission::AdmissionError;
use crate::session::SessionId;
use std::fmt;

/// Why a frame-server operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The session was rejected at admission.
    Admission(AdmissionError),
    /// No session with this id was ever admitted.
    UnknownSession {
        /// The offending id.
        id: SessionId,
    },
    /// A streaming-only operation (pose ingestion, stream close) was applied
    /// to a whole-trajectory session.
    NotStreaming {
        /// The session.
        id: SessionId,
    },
    /// A pose was pushed after [`close_stream`](crate::FrameServer::close_stream).
    StreamClosed {
        /// The session.
        id: SessionId,
    },
    /// An eviction was requested from an empty reference cache.
    EmptyEviction,
    /// The session no longer lives on this shard: a fleet failover migrated
    /// it elsewhere. Route through the [`Fleet`](crate::Fleet), which tracks
    /// every session's current home.
    SessionMigrated {
        /// The session's id on the shard it left.
        id: SessionId,
    },
    /// The session's shard died and no surviving shard could adopt it.
    SessionLost {
        /// The fleet-level session id.
        id: SessionId,
    },
    /// Every shard in the fleet is dead; no operation can be routed.
    FleetDown,
    /// The server is saturated: the pending-admission queue is full and this
    /// request was the predicted-worst SLO risk, so it was pushed back
    /// instead of queued. Explicit backpressure — the client should resubmit
    /// after `retry_after_s` (the replay harness does, with seeded jitter).
    Overloaded {
        /// Simulated seconds the client should wait before resubmitting.
        retry_after_s: f64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Admission(e) => write!(f, "admission rejected: {e}"),
            ServeError::UnknownSession { id } => write!(f, "unknown session {id}"),
            ServeError::NotStreaming { id } => {
                write!(f, "session {id} is not streaming (whole-trajectory)")
            }
            ServeError::StreamClosed { id } => {
                write!(f, "session {id}'s pose stream is closed")
            }
            ServeError::EmptyEviction => write!(f, "eviction requested from an empty cache"),
            ServeError::SessionMigrated { id } => {
                write!(f, "session {id} migrated off this shard during failover")
            }
            ServeError::SessionLost { id } => {
                write!(f, "session {id} was lost: its shard died with no survivor")
            }
            ServeError::FleetDown => write!(f, "every shard in the fleet is dead"),
            ServeError::Overloaded { retry_after_s } => {
                write!(f, "server overloaded; retry after {retry_after_s}s")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Admission(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Admission(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: ServeError = AdmissionError::SessionLimit { max_sessions: 3 }.into();
        assert!(matches!(e, ServeError::Admission(_)));
        assert!(e.to_string().contains("admission rejected"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ServeError::UnknownSession { id: 7 }
            .to_string()
            .contains('7'));
        assert!(std::error::Error::source(&ServeError::EmptyEviction).is_none());
        let over = ServeError::Overloaded {
            retry_after_s: 0.25,
        };
        assert!(over.to_string().contains("retry after 0.25s"));
        assert!(std::error::Error::source(&over).is_none());
    }
}
