//! Deterministic traffic profiles and the replay harness.
//!
//! A [`TrafficProfile`] is a **versioned, plain-text** record of a serving
//! workload: session arrivals, QoS mix, scene popularity and pose-stream
//! cadences. Profiles come from two places — a [`TrafficModel`] *generates*
//! one from a seed (Zipf scene popularity, diurnal or flash-crowd arrival
//! processes, jittered cadences), and a [`TrafficRecorder`] *records* one
//! from any live [`FrameServer`]/[`Fleet`](crate::Fleet) run — and replay
//! identically either way: [`run_replay`] drives a server with open-loop
//! session arrivals and closed-loop pose streaming, emitting a
//! [`ReplayOutcome`] whose [`ServiceReport`] obeys the standing contract:
//! **same profile, same seed ⇒ bit-identical report at any host thread
//! budget**.
//!
//! # Draw machinery
//!
//! Every random-looking decision is a keyed idempotent draw over the
//! profile seed — [`keyed_unit`](crate::fault::keyed_unit)`(seed, TAG,
//! session, k, _)` — the exact machinery behind
//! [`FaultPlan::fires`](crate::FaultPlan::fires), with generator tags
//! (101+) disjoint from the fault tags (1–7). Generating a profile twice,
//! replaying it twice, or replaying it at a different host budget cannot
//! diverge: there is no RNG state to advance, only keys to hash.
//!
//! # Replay semantics
//!
//! Arrivals are **open-loop**: sessions submit at their recorded offsets
//! regardless of how overloaded the server is (that is the point — overload
//! control, not admission-time luck, decides what happens). Pose streams are
//! **closed-loop**: a streaming client buffers poses while its submission
//! waits in the pending-admission queue and flushes them once its ticket
//! admits. Backpressure ([`ServeError::Overloaded`]) is honored with seeded
//! retry/backoff; every retry instant is itself a keyed draw, so the retry
//! storm replays bit-identically too.

use crate::error::ServeError;
use crate::fault::{keyed_draw, keyed_unit};
use crate::report::ServiceReport;
use crate::scheduler::{FrameServer, ServeConfig, SubmitOutcome, TicketId, TicketState};
use crate::session::{QosClass, SessionId, SessionSpec};
use cicero::pipeline::PipelineConfig;
use cicero_field::{bake, GridConfig, GridModel};
use cicero_math::{Intrinsics, Pose};
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, AnalyticScene, Trajectory, TrajectoryKind};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Draw tags for the traffic generator and replay client, disjoint from the
/// [`FaultKind`](crate::FaultKind) tags (1–7) so a traffic profile and a
/// fault plan sharing one seed stay decorrelated.
const TAG_ARRIVAL: u64 = 101;
const TAG_SCENE: u64 = 102;
const TAG_QOS: u64 = 103;
const TAG_STREAM: u64 = 104;
const TAG_CADENCE: u64 = 105;
const TAG_RETRY: u64 = 106;
const TAG_TRAJ: u64 = 107;

/// Camera-path kind of a recorded session, replayed via
/// [`Trajectory::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Smooth orbit (screen viewers, exporters).
    Orbit,
    /// Handheld 6-DoF shake (head-tracked clients); the session's
    /// `path_seed` drives the shake phases.
    Handheld,
    /// Far-to-near dolly.
    FlyThrough,
}

impl PathKind {
    /// Stable text-format label.
    pub fn label(self) -> &'static str {
        match self {
            PathKind::Orbit => "orbit",
            PathKind::Handheld => "handheld",
            PathKind::FlyThrough => "flythrough",
        }
    }

    /// Parses a [`label`](Self::label) back; `None` for unknown labels.
    pub fn from_label(s: &str) -> Option<PathKind> {
        match s {
            "orbit" => Some(PathKind::Orbit),
            "handheld" => Some(PathKind::Handheld),
            "flythrough" => Some(PathKind::FlyThrough),
            _ => None,
        }
    }

    fn to_trajectory_kind(self) -> TrajectoryKind {
        match self {
            PathKind::Orbit => TrajectoryKind::Orbit,
            PathKind::Handheld => TrajectoryKind::Handheld,
            PathKind::FlyThrough => TrajectoryKind::FlyThrough,
        }
    }
}

// Hand impl: the derive shim only handles named-field structs, not enums.
impl Serialize for PathKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

/// One session of a [`TrafficProfile`]: everything the replay driver needs
/// to reconstruct the client bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficSession {
    /// Session name (whitespace-free; the text format is space-delimited).
    pub name: String,
    /// Library scene name ([`library::scene_by_name`]).
    pub scene: String,
    /// QoS class.
    pub qos: QosClass,
    /// Arrival (submission) instant, simulated seconds.
    pub start_s: f64,
    /// Frames the client wants served (for streaming sessions: poses the
    /// client will push).
    pub frames: u32,
    /// Client frame rate.
    pub fps: f32,
    /// Whether the client streams poses one at a time (closed-loop) instead
    /// of submitting a whole trajectory.
    pub streaming: bool,
    /// Camera-path kind.
    pub path: PathKind,
    /// Seed for seed-controlled paths (handheld shake phases).
    pub path_seed: u64,
}

/// Why a traffic profile failed to parse or resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficError {
    /// The text did not conform to the versioned format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A session references a scene the library does not know.
    UnknownScene {
        /// The unresolvable scene name.
        name: String,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::Parse { line, msg } => {
                write!(f, "traffic profile parse error at line {line}: {msg}")
            }
            TrafficError::UnknownScene { name } => write!(f, "unknown library scene {name:?}"),
        }
    }
}

impl std::error::Error for TrafficError {}

/// A versioned traffic trace: the complete client-side workload of one
/// serving run, in a plain-text format that round-trips exactly
/// ([`to_text`](Self::to_text) / [`parse`](Self::parse)).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficProfile {
    /// The seed the profile was generated from — also the default client
    /// seed (retry jitter) at replay.
    pub seed: u64,
    /// Nominal trace duration, simulated seconds (arrivals fall within it).
    pub duration_s: f64,
    /// The sessions, in arrival order.
    pub sessions: Vec<TrafficSession>,
}

impl TrafficProfile {
    /// Serializes to the versioned plain-text format:
    ///
    /// ```text
    /// cicero-traffic-profile v1
    /// seed 42
    /// duration_s 8.0
    /// sessions 2
    /// session name=c000-lego-interactive scene=lego qos=interactive start_s=0.25 frames=12 fps=30.0 streaming=true path=handheld path_seed=7
    /// session ...
    /// ```
    ///
    /// Floats print in shortest-round-trip form and parse back exactly, so
    /// `parse(to_text(p)) == p` bit-for-bit.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("cicero-traffic-profile v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("duration_s {:?}\n", self.duration_s));
        out.push_str(&format!("sessions {}\n", self.sessions.len()));
        for s in &self.sessions {
            out.push_str(&format!(
                "session name={} scene={} qos={} start_s={:?} frames={} fps={:?} streaming={} path={} path_seed={}\n",
                sanitize(&s.name),
                sanitize(&s.scene),
                s.qos.label(),
                s.start_s,
                s.frames,
                s.fps,
                s.streaming,
                s.path.label(),
                s.path_seed,
            ));
        }
        out
    }

    /// Parses the text format produced by [`to_text`](Self::to_text).
    ///
    /// # Errors
    ///
    /// [`TrafficError::Parse`] with the offending line on any malformed
    /// header, unknown version, missing field or unparsable value.
    pub fn parse(text: &str) -> Result<TrafficProfile, TrafficError> {
        let err = |line: usize, msg: &str| TrafficError::Parse {
            line,
            msg: msg.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (n, header) = lines.next().ok_or_else(|| err(1, "empty profile"))?;
        if header.trim() != "cicero-traffic-profile v1" {
            return Err(err(n + 1, "expected header `cicero-traffic-profile v1`"));
        }
        let mut scalar = |key: &str| -> Result<(usize, String), TrafficError> {
            let (n, line) = lines
                .next()
                .ok_or_else(|| err(0, &format!("missing `{key}` line")))?;
            let rest = line
                .strip_prefix(key)
                .ok_or_else(|| err(n + 1, &format!("expected `{key} <value>`")))?;
            Ok((n + 1, rest.trim().to_string()))
        };
        let (n, seed) = scalar("seed")?;
        let seed: u64 = seed.parse().map_err(|_| err(n, "seed must be a u64"))?;
        let (n, duration) = scalar("duration_s")?;
        let duration_s: f64 = duration
            .parse()
            .map_err(|_| err(n, "duration_s must be a float"))?;
        let (n, count) = scalar("sessions")?;
        let count: usize = count
            .parse()
            .map_err(|_| err(n, "sessions must be a count"))?;
        let mut sessions = Vec::with_capacity(count);
        for (n, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let body = line
                .strip_prefix("session ")
                .ok_or_else(|| err(n + 1, "expected `session key=value ...`"))?;
            sessions.push(parse_session(n + 1, body)?);
        }
        if sessions.len() != count {
            return Err(err(
                4,
                &format!("declared {count} sessions but found {}", sessions.len()),
            ));
        }
        Ok(TrafficProfile {
            seed,
            duration_s,
            sessions,
        })
    }

    /// Client-demanded frames per QoS class, indexed by
    /// [`QosClass::priority`] — the offered-load denominator behind
    /// client-side SLO attainment.
    pub fn offered_frames_by_class(&self) -> [u64; 3] {
        let mut offered = [0u64; 3];
        for s in &self.sessions {
            offered[s.qos.priority() as usize] += s.frames as u64;
        }
        offered
    }
}

/// The text format is whitespace-delimited; recorded names must not smuggle
/// separators in.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_whitespace() || c == '=' {
                '-'
            } else {
                c
            }
        })
        .collect()
}

fn parse_session(line: usize, body: &str) -> Result<TrafficSession, TrafficError> {
    let err = |msg: String| TrafficError::Parse { line, msg };
    let mut name = None;
    let mut scene = None;
    let mut qos = None;
    let mut start_s = None;
    let mut frames = None;
    let mut fps = None;
    let mut streaming = None;
    let mut path = None;
    let mut path_seed = None;
    for field in body.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| err(format!("field {field:?} is not key=value")))?;
        match key {
            "name" => name = Some(value.to_string()),
            "scene" => scene = Some(value.to_string()),
            "qos" => {
                qos = Some(
                    QosClass::from_label(value)
                        .ok_or_else(|| err(format!("unknown qos class {value:?}")))?,
                )
            }
            "start_s" => {
                start_s = Some(
                    value
                        .parse::<f64>()
                        .map_err(|_| err(format!("start_s {value:?} is not a float")))?,
                )
            }
            "frames" => {
                frames = Some(
                    value
                        .parse::<u32>()
                        .map_err(|_| err(format!("frames {value:?} is not a u32")))?,
                )
            }
            "fps" => {
                fps = Some(
                    value
                        .parse::<f32>()
                        .map_err(|_| err(format!("fps {value:?} is not a float")))?,
                )
            }
            "streaming" => {
                streaming = Some(
                    value
                        .parse::<bool>()
                        .map_err(|_| err(format!("streaming {value:?} is not a bool")))?,
                )
            }
            "path" => {
                path = Some(
                    PathKind::from_label(value)
                        .ok_or_else(|| err(format!("unknown path kind {value:?}")))?,
                )
            }
            "path_seed" => {
                path_seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| err(format!("path_seed {value:?} is not a u64")))?,
                )
            }
            other => return Err(err(format!("unknown field {other:?}"))),
        }
    }
    Ok(TrafficSession {
        name: name.ok_or_else(|| err("missing name".into()))?,
        scene: scene.ok_or_else(|| err("missing scene".into()))?,
        qos: qos.ok_or_else(|| err("missing qos".into()))?,
        start_s: start_s.ok_or_else(|| err("missing start_s".into()))?,
        frames: frames.ok_or_else(|| err("missing frames".into()))?,
        fps: fps.ok_or_else(|| err("missing fps".into()))?,
        streaming: streaming.ok_or_else(|| err("missing streaming".into()))?,
        path: path.ok_or_else(|| err("missing path".into()))?,
        path_seed: path_seed.ok_or_else(|| err("missing path_seed".into()))?,
    })
}

/// The session-arrival process of a [`TrafficModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Arrivals uniform over the trace duration.
    Uniform,
    /// A raised-cosine daily peak mixed over the uniform base: density
    /// `∝ 1 + peak_boost·(1 − cos(2πt/T))/2`.
    Diurnal {
        /// Peak density boost over the uniform base (0 = uniform).
        peak_boost: f64,
    },
    /// A flash crowd: `crowd_frac` of sessions arrive inside a burst window,
    /// the rest uniformly.
    FlashCrowd {
        /// Burst center, as a fraction of the duration.
        at_frac: f64,
        /// Burst width, as a fraction of the duration.
        width_frac: f64,
        /// Fraction of sessions belonging to the burst.
        crowd_frac: f64,
    },
}

impl ArrivalProcess {
    /// Maps two unit draws to an arrival instant in `[0, duration_s]` by
    /// inverse-CDF (deterministic bisection for the raised-cosine
    /// component) — no RNG state, so arrival `i` depends only on its draws.
    fn sample(&self, u: f64, v: f64, duration_s: f64) -> f64 {
        let x = match *self {
            ArrivalProcess::Uniform => u,
            ArrivalProcess::Diurnal { peak_boost } => {
                let w = (peak_boost / 2.0) / (1.0 + peak_boost / 2.0);
                if v < w {
                    // Invert F(x) = x − sin(2πx)/(2π) on [0,1].
                    let f = |x: f64| x - (std::f64::consts::TAU * x).sin() / std::f64::consts::TAU;
                    let (mut lo, mut hi) = (0.0f64, 1.0f64);
                    for _ in 0..52 {
                        let mid = 0.5 * (lo + hi);
                        if f(mid) < u {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    0.5 * (lo + hi)
                } else {
                    u
                }
            }
            ArrivalProcess::FlashCrowd {
                at_frac,
                width_frac,
                crowd_frac,
            } => {
                if v < crowd_frac {
                    (at_frac + (u - 0.5) * width_frac).clamp(0.0, 1.0)
                } else {
                    u
                }
            }
        };
        x * duration_s
    }
}

/// A deterministic traffic generator: shape knobs plus
/// [`generate`](Self::generate)`(seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    /// Sessions to generate.
    pub sessions: usize,
    /// Trace duration (arrival window), simulated seconds.
    pub duration_s: f64,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Candidate scene names; popularity is Zipf over this order.
    pub scenes: Vec<String>,
    /// Zipf exponent of scene popularity (0 = uniform).
    pub zipf_s: f64,
    /// QoS mix weights, indexed by [`QosClass::priority`]
    /// (interactive, standard, best-effort). Normalized internally.
    pub qos_mix: [f64; 3],
    /// Fraction of sessions using streaming (closed-loop) pose ingestion.
    pub streaming_frac: f64,
    /// Nominal frames per session; jittered ±25% per session.
    pub frames: u32,
    /// Nominal client frame rate.
    pub base_fps: f32,
    /// Cadence jitter: each session's fps is scaled by
    /// `1 ± fps_jitter·(2u−1)`.
    pub fps_jitter: f64,
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel {
            sessions: 24,
            duration_s: 1.0,
            arrivals: ArrivalProcess::Uniform,
            scenes: vec![
                "lego".into(),
                "chair".into(),
                "ship".into(),
                "hotdog".into(),
            ],
            zipf_s: 1.0,
            qos_mix: [2.0, 3.0, 1.0],
            streaming_frac: 0.25,
            frames: 12,
            base_fps: 30.0,
            fps_jitter: 0.1,
        }
    }
}

impl TrafficModel {
    /// Generates the profile for `seed`. Pure: same model + same seed ⇒
    /// byte-identical profile, every draw keyed and idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the model has no sessions, no scenes, a non-positive
    /// duration or an all-zero QoS mix.
    pub fn generate(&self, seed: u64) -> TrafficProfile {
        assert!(self.sessions > 0, "traffic model needs sessions");
        assert!(!self.scenes.is_empty(), "traffic model needs scenes");
        assert!(self.duration_s > 0.0, "duration must be positive");
        let qos_total: f64 = self.qos_mix.iter().sum();
        assert!(qos_total > 0.0, "qos mix must have weight somewhere");

        // Zipf popularity over the scene list: weight 1/(k+1)^s.
        let zipf: Vec<f64> = (0..self.scenes.len())
            .map(|k| 1.0 / ((k + 1) as f64).powf(self.zipf_s))
            .collect();
        let zipf_total: f64 = zipf.iter().sum();

        let mut sessions: Vec<TrafficSession> = (0..self.sessions as u64)
            .map(|i| {
                let start_s = self.arrivals.sample(
                    keyed_unit(seed, TAG_ARRIVAL, i, 0, 0),
                    keyed_unit(seed, TAG_ARRIVAL, i, 1, 0),
                    self.duration_s,
                );
                let scene_idx =
                    pick_weighted(keyed_unit(seed, TAG_SCENE, i, 0, 0), &zipf, zipf_total);
                let qos_idx =
                    pick_weighted(keyed_unit(seed, TAG_QOS, i, 0, 0), &self.qos_mix, qos_total);
                let qos = match qos_idx {
                    0 => QosClass::Interactive,
                    1 => QosClass::Standard,
                    _ => QosClass::BestEffort,
                };
                let streaming = keyed_unit(seed, TAG_STREAM, i, 0, 0) < self.streaming_frac;
                let fps = self.base_fps
                    * (1.0 + self.fps_jitter * (2.0 * keyed_unit(seed, TAG_CADENCE, i, 0, 0) - 1.0))
                        as f32;
                let frames = ((self.frames as f64
                    * (0.75 + 0.5 * keyed_unit(seed, TAG_CADENCE, i, 1, 0)))
                .round() as u32)
                    .max(1);
                let path = match qos {
                    QosClass::Interactive => PathKind::Handheld,
                    QosClass::Standard => PathKind::Orbit,
                    QosClass::BestEffort => {
                        if keyed_unit(seed, TAG_TRAJ, i, 1, 0) < 0.5 {
                            PathKind::FlyThrough
                        } else {
                            PathKind::Orbit
                        }
                    }
                };
                let scene = self.scenes[scene_idx].clone();
                TrafficSession {
                    name: format!("c{i:03}-{scene}-{}", qos.label()),
                    scene,
                    qos,
                    start_s,
                    frames,
                    fps,
                    streaming,
                    path,
                    path_seed: keyed_draw(seed, TAG_TRAJ, i, 0, 0),
                }
            })
            .collect();
        // Arrival order, ties by generation index (names differ, so the sort
        // is total and stable-by-construction).
        sessions.sort_by(|a, b| a.start_s.total_cmp(&b.start_s).then(a.name.cmp(&b.name)));
        TrafficProfile {
            seed,
            duration_s: self.duration_s,
            sessions,
        }
    }
}

/// Inverse-CDF pick over unnormalized weights.
fn pick_weighted(u: f64, weights: &[f64], total: f64) -> usize {
    let target = u * total;
    let mut cum = 0.0;
    for (i, w) in weights.iter().enumerate() {
        cum += w;
        if target < cum {
            return i;
        }
    }
    weights.len() - 1
}

/// Records a [`TrafficProfile`] from a live run: call
/// [`note`](Self::note) alongside each submission, then
/// [`finish`](Self::finish). The recorded profile replays through
/// [`run_replay`] like a generated one.
#[derive(Debug, Clone)]
pub struct TrafficRecorder {
    seed: u64,
    sessions: Vec<TrafficSession>,
}

impl TrafficRecorder {
    /// A recorder whose profile will carry `seed` (the replay client's
    /// default retry-jitter seed).
    pub fn new(seed: u64) -> Self {
        TrafficRecorder {
            seed,
            sessions: Vec::new(),
        }
    }

    /// Records one submission. `scene` must be a library scene name;
    /// `frames`/`fps` describe the client's trajectory, `path`/`path_seed`
    /// how to regenerate it.
    #[allow(clippy::too_many_arguments)] // one flat record, not an API surface
    pub fn note(
        &mut self,
        spec: &SessionSpec,
        scene: &str,
        frames: u32,
        fps: f32,
        streaming: bool,
        path: PathKind,
        path_seed: u64,
    ) {
        self.sessions.push(TrafficSession {
            name: sanitize(&spec.name),
            scene: sanitize(scene),
            qos: spec.qos,
            start_s: spec.start_offset_s,
            frames,
            fps,
            streaming,
            path,
            path_seed,
        });
    }

    /// Sessions recorded so far.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Finishes the profile: sessions sorted into arrival order, duration
    /// set to the last arrival (or zero when empty).
    pub fn finish(mut self) -> TrafficProfile {
        self.sessions
            .sort_by(|a, b| a.start_s.total_cmp(&b.start_s).then(a.name.cmp(&b.name)));
        let duration_s = self.sessions.iter().map(|s| s.start_s).fold(0.0, f64::max);
        TrafficProfile {
            seed: self.seed,
            duration_s,
            sessions: self.sessions,
        }
    }
}

/// Owned scene/model/trajectory assets backing one profile's replay. The
/// borrowed-asset serving contract ([`FrameServer`] sessions borrow their
/// scenes) means these must outlive the server; build them once and hand
/// them to [`run_replay`].
pub struct TrafficAssets {
    /// Unique `(name, scene, baked model)` triples, in first-use order.
    scenes: Vec<(String, AnalyticScene, GridModel)>,
    /// Per-session trajectory, parallel to the profile's sessions.
    trajectories: Vec<Trajectory>,
    /// Per-session index into [`scenes`](Self::scenes).
    scene_of: Vec<usize>,
}

impl TrafficAssets {
    /// Bakes every scene the profile references and regenerates every
    /// session's trajectory.
    ///
    /// # Errors
    ///
    /// [`TrafficError::UnknownScene`] if a session names a scene the
    /// [`library`] does not know.
    pub fn build(profile: &TrafficProfile, grid: &GridConfig) -> Result<Self, TrafficError> {
        let mut scenes: Vec<(String, AnalyticScene, GridModel)> = Vec::new();
        let mut trajectories = Vec::with_capacity(profile.sessions.len());
        let mut scene_of = Vec::with_capacity(profile.sessions.len());
        for s in &profile.sessions {
            let idx = match scenes.iter().position(|(n, _, _)| n == &s.scene) {
                Some(idx) => idx,
                None => {
                    let scene = library::scene_by_name(&s.scene).ok_or_else(|| {
                        TrafficError::UnknownScene {
                            name: s.scene.clone(),
                        }
                    })?;
                    let model = bake::bake_grid(&scene, grid);
                    scenes.push((s.scene.clone(), scene, model));
                    scenes.len() - 1
                }
            };
            let frames = s.frames.max(1) as usize;
            trajectories.push(Trajectory::generate(
                &scenes[idx].1,
                frames,
                s.fps,
                s.path.to_trajectory_kind(),
                s.path_seed,
            ));
            scene_of.push(idx);
        }
        Ok(TrafficAssets {
            scenes,
            trajectories,
            scene_of,
        })
    }

    /// Unique scenes baked for this profile.
    pub fn scene_count(&self) -> usize {
        self.scenes.len()
    }
}

/// Replay knobs: the server configuration plus the client model.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// The server under test. Arm [`ServeConfig::overload`] here; `None`
    /// replays against historical admit-or-reject behavior.
    pub cfg: ServeConfig,
    /// Client-side draw seed (retry jitter). Use the profile's own seed for
    /// the canonical replay.
    pub client_seed: u64,
    /// Resubmissions a backpressured client attempts before giving up.
    pub max_retries: u32,
    /// Camera intrinsics for every session.
    pub intrinsics: Intrinsics,
    /// Warp window for interactive sessions (others get `window + 2`).
    pub window: usize,
    /// Collect per-frame quality (PSNR) in session summaries. Off by
    /// default — replay is a scheduling harness — but bit-identity tests
    /// turn it on, both for the stronger check (PSNR equality ⇒ pixels
    /// match) and because an uncollected summary reports `NaN` PSNR, which
    /// `PartialEq` correctly refuses to call equal.
    pub collect_quality: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            cfg: ServeConfig::default(),
            client_seed: 0,
            max_retries: 3,
            intrinsics: Intrinsics::from_fov(32, 32, 0.9),
            window: 4,
            collect_quality: false,
        }
    }
}

/// Client-side accounting of one replay: what the simulated clients
/// experienced, complementing the server's [`ServiceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ClientStats {
    /// Submission attempts (first tries; retries count separately).
    pub submitted: u64,
    /// Sessions admitted immediately at submission.
    pub admitted: u64,
    /// Sessions that entered the pending-admission queue.
    pub queued: u64,
    /// Queued sessions eventually admitted (full fidelity or browned out).
    pub queue_admitted: u64,
    /// Queued sessions shed by the server.
    pub shed: u64,
    /// Hard admission rejections (reject-only baseline; no queue to enter).
    pub rejected: u64,
    /// [`ServeError::Overloaded`] backpressure responses received.
    pub backpressured: u64,
    /// Resubmissions after backpressure (seeded jittered backoff).
    pub retries: u64,
    /// Sessions abandoned after exhausting retries.
    pub abandoned: u64,
    /// Poses pushed into admitted streams (buffered ones included once
    /// flushed).
    pub poses_pushed: u64,
}

/// The result of one [`run_replay`]: the server's report plus the client
/// view and the offered-vs-attained SLO accounting.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplayOutcome {
    /// The server's service report (bit-identical at any host budget).
    pub report: ServiceReport,
    /// What the clients saw.
    pub client: ClientStats,
    /// Client-demanded frames per QoS class (the profile's offered load).
    pub offered_frames: [u64; 3],
    /// Frames served on time per QoS class.
    pub ontime_frames: [u64; 3],
    /// Client-side SLO attainment: `ontime / offered` per class (1.0 where
    /// nothing was offered). Unlike the server-side
    /// [`OverloadReport::slo_attainment`](crate::report::OverloadReport),
    /// this charges rejected and abandoned sessions too — the figure a
    /// reject-only baseline must be compared on.
    pub attainment: [f64; 3],
    /// On-time frames per second of makespan, client view.
    pub goodput_fps: f64,
}

/// Client-side session state during replay.
#[derive(Clone, Copy)]
enum ClientState {
    /// Submitted and admitted; streaming sessions push poses directly.
    Admitted(SessionId),
    /// Waiting in the pending-admission queue; streaming poses buffer.
    Waiting(TicketId),
    /// Rejected, shed, or abandoned after retries.
    Dropped,
    /// Not yet submitted (or between backpressure retries).
    Idle,
}

/// One scheduled replay event.
#[derive(Clone, Copy)]
enum Event {
    /// Submit session `s` (attempt > 0 = post-backpressure retry).
    Submit { s: usize, attempt: u32 },
    /// Push pose `k` of streaming session `s`.
    Pose { s: usize, k: usize },
    /// Close streaming session `s`'s pose feed.
    Close { s: usize },
}

/// Deterministic time-ordered event queue: min-heap on
/// `(time bits, insertion seq)` — f64 `to_bits` orders non-negative floats
/// correctly, and the seq makes ties replay in insertion order.
struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    events: Vec<Event>,
}

impl EventQueue {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
        }
    }

    fn push(&mut self, t: f64, e: Event) {
        debug_assert!(t >= 0.0 && t.is_finite(), "event times are non-negative");
        let seq = self.events.len() as u64;
        self.events.push(e);
        self.heap.push(Reverse((t.to_bits(), seq)));
    }

    fn peek_time(&self) -> Option<f64> {
        self.heap
            .peek()
            .map(|Reverse((bits, _))| f64::from_bits(*bits))
    }

    fn pop(&mut self) -> Option<(f64, Event)> {
        let Reverse((bits, seq)) = self.heap.pop()?;
        Some((f64::from_bits(bits), self.events[seq as usize]))
    }
}

/// Replays `profile` against a fresh [`FrameServer`] built from
/// `opts.cfg`: open-loop session arrivals, closed-loop pose streaming,
/// seeded retry/backoff under backpressure. Same profile + same options ⇒
/// bit-identical [`ReplayOutcome`] at any host thread budget.
///
/// # Errors
///
/// Propagates any [`ServeError`] the replay client cannot absorb
/// (admission rejections, backpressure and shed tickets are absorbed and
/// counted; everything else is a harness bug surfaced to the caller).
pub fn run_replay(
    profile: &TrafficProfile,
    assets: &TrafficAssets,
    opts: &ReplayOptions,
) -> Result<ReplayOutcome, ServeError> {
    assert_eq!(
        assets.trajectories.len(),
        profile.sessions.len(),
        "assets must be built from this profile"
    );
    let mut server = FrameServer::new(opts.cfg.clone());
    let mut queue = EventQueue::new();
    let mut clients: Vec<ClientState> = Vec::with_capacity(profile.sessions.len());
    let mut buffered: Vec<Vec<Pose>> = Vec::with_capacity(profile.sessions.len());
    let mut closed: Vec<bool> = vec![false; profile.sessions.len()];
    let mut stats = ClientStats::default();

    for (s, sess) in profile.sessions.iter().enumerate() {
        clients.push(ClientState::Idle);
        buffered.push(Vec::new());
        queue.push(sess.start_s.max(0.0), Event::Submit { s, attempt: 0 });
    }

    let spec_of = |s: usize| -> SessionSpec {
        let sess = &profile.sessions[s];
        SessionSpec {
            name: sess.name.clone(),
            scene_key: sess.scene.clone(),
            qos: sess.qos,
            start_offset_s: sess.start_s,
            config: PipelineConfig {
                window: if sess.qos == QosClass::Interactive {
                    opts.window
                } else {
                    opts.window + 2
                },
                march: MarchParams {
                    step: 0.04,
                    ..Default::default()
                },
                collect_quality: opts.collect_quality,
                collect_traffic: false,
                ..Default::default()
            },
        }
    };

    loop {
        let t_round = server.next_ready_s();
        match queue.peek_time() {
            Some(te) if te <= t_round || !t_round.is_finite() => {
                let (t, event) = queue.pop().expect("peeked event pops");
                match event {
                    Event::Submit { s, attempt } => {
                        let sess = &profile.sessions[s];
                        let spec = spec_of(s);
                        if attempt == 0 {
                            stats.submitted += 1;
                        }
                        let outcome = if sess.streaming {
                            server.submit_stream_at(
                                t,
                                spec,
                                &assets.scenes[assets.scene_of[s]].1,
                                &assets.scenes[assets.scene_of[s]].2,
                                sess.fps,
                                opts.intrinsics,
                            )
                        } else {
                            server.submit_at(
                                t,
                                spec,
                                &assets.scenes[assets.scene_of[s]].1,
                                &assets.scenes[assets.scene_of[s]].2,
                                &assets.trajectories[s],
                                opts.intrinsics,
                            )
                        };
                        match outcome {
                            Ok(SubmitOutcome::Admitted(id)) => {
                                stats.admitted += 1;
                                clients[s] = ClientState::Admitted(id);
                                if sess.streaming {
                                    schedule_stream(&mut queue, profile, opts.client_seed, s, t);
                                }
                            }
                            Ok(SubmitOutcome::Queued(ticket)) => {
                                stats.queued += 1;
                                clients[s] = ClientState::Waiting(ticket);
                                if sess.streaming {
                                    schedule_stream(&mut queue, profile, opts.client_seed, s, t);
                                }
                            }
                            Err(ServeError::Overloaded { retry_after_s }) => {
                                stats.backpressured += 1;
                                if attempt < opts.max_retries {
                                    stats.retries += 1;
                                    // Seeded jitter decorrelates the retry
                                    // storm without an RNG to advance.
                                    let jitter = keyed_unit(
                                        opts.client_seed,
                                        TAG_RETRY,
                                        s as u64,
                                        attempt as u64,
                                        0,
                                    );
                                    let at = t + retry_after_s * (1.0 + jitter);
                                    queue.push(
                                        at,
                                        Event::Submit {
                                            s,
                                            attempt: attempt + 1,
                                        },
                                    );
                                } else {
                                    stats.abandoned += 1;
                                    clients[s] = ClientState::Dropped;
                                }
                            }
                            Err(ServeError::Admission(_)) => {
                                stats.rejected += 1;
                                clients[s] = ClientState::Dropped;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Event::Pose { s, k } => {
                        let pose = assets.trajectories[s].poses()[k];
                        match clients[s] {
                            ClientState::Admitted(id) => {
                                server.push_pose(id, pose)?;
                                stats.poses_pushed += 1;
                            }
                            ClientState::Waiting(ticket) => match server.ticket(ticket) {
                                Some(TicketState::Admitted(id)) => {
                                    flush_stream(&mut server, &mut buffered[s], id, &mut stats)?;
                                    server.push_pose(id, pose)?;
                                    stats.poses_pushed += 1;
                                    clients[s] = ClientState::Admitted(id);
                                }
                                Some(TicketState::Shed) => {
                                    clients[s] = ClientState::Dropped;
                                    buffered[s].clear();
                                }
                                _ => buffered[s].push(pose),
                            },
                            _ => {}
                        }
                    }
                    Event::Close { s } => match clients[s] {
                        ClientState::Admitted(id) => {
                            server.close_stream(id)?;
                            closed[s] = true;
                        }
                        ClientState::Waiting(ticket) => {
                            if let Some(TicketState::Admitted(id)) = server.ticket(ticket) {
                                flush_stream(&mut server, &mut buffered[s], id, &mut stats)?;
                                server.close_stream(id)?;
                                clients[s] = ClientState::Admitted(id);
                                closed[s] = true;
                            }
                            // Still pending: the final reconciliation pass
                            // below flushes and closes once the ticket
                            // resolves.
                        }
                        _ => {}
                    },
                }
            }
            _ if t_round.is_finite() => {
                if let Some(t) = server.run_round() {
                    server.pump_overload(t);
                }
            }
            _ => {
                // No events left and nothing ready. First reconcile
                // streaming clients whose tickets resolved during rounds:
                // flushing buffered poses may make new work ready.
                let mut progressed = false;
                for s in 0..clients.len() {
                    if let ClientState::Waiting(ticket) = clients[s] {
                        match server.ticket(ticket) {
                            Some(TicketState::Admitted(id)) => {
                                flush_stream(&mut server, &mut buffered[s], id, &mut stats)?;
                                if profile.sessions[s].streaming && !closed[s] {
                                    server.close_stream(id)?;
                                    closed[s] = true;
                                }
                                clients[s] = ClientState::Admitted(id);
                                progressed = true;
                            }
                            Some(TicketState::Shed) => {
                                clients[s] = ClientState::Dropped;
                                buffered[s].clear();
                            }
                            _ => {}
                        }
                    }
                }
                if progressed {
                    continue;
                }
                // Queue entries may still wait on their SLO deadlines:
                // advance to the earliest frontier and pump, exactly like
                // the armed [`FrameServer::run`] loop.
                let Some(ft) = server.queue_frontier_s() else {
                    break;
                };
                let before = server.queued();
                server.pump_overload(ft);
                if server.queued() >= before && !server.next_ready_s().is_finite() {
                    // Defensive: frontier pump resolved nothing and no
                    // session can serve — reconcile once more next loop,
                    // then the frontier (now unchanged) ends the replay.
                    break;
                }
            }
        }
    }
    server.release_drained_loads();

    // Queued outcomes resolve server-side whether or not a client polled its
    // ticket again, so the authoritative counts come from the report.
    let report = server.finish_report();
    stats.queue_admitted = report.overload.queue_admits + report.overload.brownout_admits;
    stats.shed = report.overload.sheds;

    // Client-side SLO attainment against offered (not admitted) load.
    let offered_frames = profile.offered_frames_by_class();
    let mut class_of: Vec<Option<u8>> = Vec::new();
    for summary in &report.sessions {
        if class_of.len() <= summary.id {
            class_of.resize(summary.id + 1, None);
        }
        class_of[summary.id] = Some(summary.qos.priority());
    }
    let mut ontime_frames = [0u64; 3];
    for r in &report.records {
        if let Some(Some(c)) = class_of.get(r.session) {
            if !r.missed_deadline() {
                ontime_frames[*c as usize] += 1;
            }
        }
    }
    let attainment = std::array::from_fn(|c| {
        if offered_frames[c] == 0 {
            1.0
        } else {
            ontime_frames[c] as f64 / offered_frames[c] as f64
        }
    });
    let ontime_total: u64 = ontime_frames.iter().sum();
    let goodput_fps = if report.makespan_s > 0.0 {
        ontime_total as f64 / report.makespan_s
    } else {
        0.0
    };
    Ok(ReplayOutcome {
        report,
        client: stats,
        offered_frames,
        ontime_frames,
        attainment,
        goodput_fps,
    })
}

/// Schedules the pose cadence and close of streaming session `s` starting
/// at its submission instant: pose `k` at `t + k/fps + jitter_k` with
/// jitter under half an interval (cadence wobble can never reorder poses),
/// close one interval after the last pose.
fn schedule_stream(
    queue: &mut EventQueue,
    profile: &TrafficProfile,
    client_seed: u64,
    s: usize,
    t: f64,
) {
    let sess = &profile.sessions[s];
    let interval = 1.0 / sess.fps as f64;
    let frames = sess.frames.max(1) as usize;
    for k in 0..frames {
        let jitter = 0.4 * interval * keyed_unit(client_seed, TAG_CADENCE, s as u64, k as u64, 1);
        queue.push(t + k as f64 * interval + jitter, Event::Pose { s, k });
    }
    queue.push(t + frames as f64 * interval + interval, Event::Close { s });
}

/// Flushes a streaming client's buffered poses into its freshly admitted
/// session.
fn flush_stream(
    server: &mut FrameServer<'_>,
    buffered: &mut Vec<Pose>,
    id: SessionId,
    stats: &mut ClientStats,
) -> Result<(), ServeError> {
    for pose in buffered.drain(..) {
        server.push_pose(id, pose)?;
        stats.poses_pushed += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> TrafficModel {
        TrafficModel {
            sessions: 8,
            duration_s: 0.5,
            scenes: vec!["lego".into(), "chair".into()],
            frames: 4,
            ..Default::default()
        }
    }

    #[test]
    fn generate_is_pure_and_seed_sensitive() {
        let m = tiny_model();
        let a = m.generate(42);
        let b = m.generate(42);
        let c = m.generate(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.sessions.len(), 8);
        for w in a.sessions.windows(2) {
            assert!(w[0].start_s <= w[1].start_s, "arrival order");
        }
    }

    #[test]
    fn profile_text_round_trips_exactly() {
        let p = tiny_model().generate(7);
        let text = p.to_text();
        let q = TrafficProfile::parse(&text).expect("well-formed profile parses");
        assert_eq!(p, q);
        // And the re-serialization is byte-identical.
        assert_eq!(text, q.to_text());
    }

    #[test]
    fn parse_rejects_malformed_profiles() {
        assert!(matches!(
            TrafficProfile::parse(""),
            Err(TrafficError::Parse { .. })
        ));
        assert!(matches!(
            TrafficProfile::parse(
                "cicero-traffic-profile v2\nseed 1\nduration_s 1.0\nsessions 0\n"
            ),
            Err(TrafficError::Parse { line: 1, .. })
        ));
        let bad_qos = "cicero-traffic-profile v1\nseed 1\nduration_s 1.0\nsessions 1\nsession name=a scene=lego qos=platinum start_s=0.0 frames=1 fps=30.0 streaming=false path=orbit path_seed=0\n";
        assert!(matches!(
            TrafficProfile::parse(bad_qos),
            Err(TrafficError::Parse { line: 5, .. })
        ));
        let missing = "cicero-traffic-profile v1\nseed 1\nduration_s 1.0\nsessions 1\nsession name=a scene=lego qos=standard\n";
        assert!(TrafficProfile::parse(missing).is_err());
        let wrong_count = "cicero-traffic-profile v1\nseed 1\nduration_s 1.0\nsessions 3\n";
        assert!(TrafficProfile::parse(wrong_count).is_err());
    }

    #[test]
    fn flash_crowd_concentrates_arrivals() {
        let mut m = tiny_model();
        m.sessions = 64;
        m.arrivals = ArrivalProcess::FlashCrowd {
            at_frac: 0.5,
            width_frac: 0.1,
            crowd_frac: 0.8,
        };
        let p = m.generate(3);
        let in_burst = p
            .sessions
            .iter()
            .filter(|s| (s.start_s / m.duration_s - 0.5).abs() <= 0.05 + 1e-9)
            .count();
        assert!(
            in_burst >= 64 / 2,
            "expected a crowd in the burst window, got {in_burst}/64"
        );
    }

    #[test]
    fn diurnal_is_deterministic_and_in_range() {
        let arr = ArrivalProcess::Diurnal { peak_boost: 3.0 };
        for i in 0..64u64 {
            let u = keyed_unit(9, TAG_ARRIVAL, i, 0, 0);
            let v = keyed_unit(9, TAG_ARRIVAL, i, 1, 0);
            let t1 = arr.sample(u, v, 10.0);
            let t2 = arr.sample(u, v, 10.0);
            assert_eq!(t1.to_bits(), t2.to_bits());
            assert!((0.0..=10.0).contains(&t1));
        }
    }

    #[test]
    fn zipf_prefers_earlier_scenes() {
        let mut m = tiny_model();
        m.sessions = 200;
        m.zipf_s = 1.4;
        let p = m.generate(11);
        let first = p.sessions.iter().filter(|s| s.scene == "lego").count();
        let second = p.sessions.iter().filter(|s| s.scene == "chair").count();
        assert!(
            first > second,
            "zipf head scene should dominate: {first} vs {second}"
        );
    }

    #[test]
    fn recorder_round_trips_through_replayable_profile() {
        let mut rec = TrafficRecorder::new(5);
        assert!(rec.is_empty());
        let spec = SessionSpec {
            name: "cam one".into(), // space must sanitize
            scene_key: "lego".into(),
            qos: QosClass::Standard,
            start_offset_s: 0.25,
            config: PipelineConfig::default(),
        };
        rec.note(&spec, "lego", 6, 30.0, false, PathKind::Orbit, 0);
        assert_eq!(rec.len(), 1);
        let p = rec.finish();
        assert_eq!(p.sessions[0].name, "cam-one");
        let q = TrafficProfile::parse(&p.to_text()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn assets_reject_unknown_scenes() {
        let mut p = tiny_model().generate(1);
        p.sessions[0].scene = "atlantis".into();
        match TrafficAssets::build(&p, &GridConfig::default()) {
            Err(TrafficError::UnknownScene { name }) => assert_eq!(name, "atlantis"),
            Err(other) => panic!("expected UnknownScene, got {other:?}"),
            Ok(_) => panic!("expected UnknownScene, got assets"),
        }
    }

    #[test]
    fn offered_frames_index_by_priority() {
        let p = TrafficProfile {
            seed: 0,
            duration_s: 1.0,
            sessions: vec![
                TrafficSession {
                    name: "a".into(),
                    scene: "lego".into(),
                    qos: QosClass::Interactive,
                    start_s: 0.0,
                    frames: 3,
                    fps: 30.0,
                    streaming: false,
                    path: PathKind::Orbit,
                    path_seed: 0,
                },
                TrafficSession {
                    name: "b".into(),
                    scene: "lego".into(),
                    qos: QosClass::BestEffort,
                    start_s: 0.1,
                    frames: 5,
                    fps: 30.0,
                    streaming: true,
                    path: PathKind::Orbit,
                    path_seed: 0,
                },
            ],
        };
        assert_eq!(p.offered_frames_by_class(), [3, 0, 5]);
    }
}
