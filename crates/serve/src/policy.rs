//! The policy layer: every scheduling *decision* the frame server makes,
//! extracted behind three traits so deployments can swap strategy without
//! touching the scheduler's plumbing.
//!
//! - [`PlacementPolicy`] — which simulated worker runs a job,
//! - [`QosPolicy`] — what happens at admission when the pool is loaded,
//! - [`PrefetchPolicy`] — whether idle simulated capacity renders future
//!   references speculatively.
//!
//! The [`Policies`] bundle on [`ServeConfig`](crate::ServeConfig) defaults to
//! implementations that reproduce the historical hard-coded behavior
//! **bit-for-bit** ([`LeastLoaded`], [`RejectAtAdmission`], [`NoPrefetch`]).
//!
//! # Determinism contract
//!
//! Policies run inside a simulated-time scheduler whose entire
//! [`ServiceReport`](crate::ServiceReport) must be bit-identical at any host
//! thread budget. Every implementation must therefore decide from
//! **simulated state only**:
//!
//! 1. Inputs are limited to what the trait hands over: the job description,
//!    the [`WorkerPool`] clocks, the admission ledger, demand-job counts.
//!    Never consult wall-clock time, host parallelism
//!    (`ServeConfig::render_threads`, `available_parallelism`), random
//!    number generators, or ambient global state.
//! 2. Be a pure function of those inputs. Interior-mutable caches are fine
//!    only if they cannot change decisions (memoization of a deterministic
//!    function).
//! 3. Hash deterministically. If a decision hashes a key (see
//!    [`SceneAffinity`]), use a fixed-seed hash like [`fnv1a`] — seeded
//!    `std::collections` hashers differ between processes.
//!
//! Adding a new policy is: implement the trait (stateless struct, `Debug +
//! Send + Sync`), obey the rules above, and hand it to the bundle via
//! [`Policies::with_placement`] (or the sibling builders). The
//! budget-determinism test in `tests/parallel_determinism.rs` should then be
//! extended to cover it — equality of the full report across budgets is the
//! cheapest proof a policy kept the contract.

use crate::admission::{AdmissionController, AdmissionError};
use crate::session::{SessionId, SessionSpec};
use cicero::Variant;
use cicero_accel::pool::WorkerPool;
use cicero_math::Intrinsics;
use std::fmt;
use std::sync::Arc;

/// FNV-1a over `bytes`: the fixed-seed hash policies must use when a
/// decision keys off a string (process-seeded hashers would break replay
/// determinism).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

/// What kind of work a placement decision is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// An off-stream reference render (cache miss batched to the pool).
    Reference,
    /// A displayed target frame (warp + sparse render, or a full render).
    Target,
    /// A speculative reference render issued by the prefetch policy.
    Prefetch,
}

/// One placement decision's context.
#[derive(Debug, Clone, Copy)]
pub struct PlacementJob<'a> {
    /// What the job is.
    pub kind: JobKind,
    /// The session the job belongs to.
    pub session: SessionId,
    /// The session's scene key (model-residency affinity target).
    pub scene_key: &'a str,
    /// Simulated time the job becomes runnable.
    pub ready_at_s: f64,
}

/// Decides which simulated [`WorkerPool`] worker executes a job.
pub trait PlacementPolicy: fmt::Debug + Send + Sync {
    /// Returns the index of the worker to bill `job` to.
    fn place(&self, job: &PlacementJob<'_>, pool: &WorkerPool) -> usize;
}

/// Default placement: the worker that becomes idle soonest (ties to the
/// lowest index) — exactly the scheduler's historical behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn place(&self, _job: &PlacementJob<'_>, pool: &WorkerPool) -> usize {
        pool.least_loaded()
    }
}

/// Scene-affinity placement: the pool is split into `lanes` contiguous
/// worker groups and every job of a scene lands in that scene's lane
/// (least-loaded within it). This models NeRF **weight residency** — a
/// worker serving one scene keeps that scene's model hot in its memory
/// hierarchy, so co-locating a scene's sessions and reference renders on one
/// lane is what a deployment with per-worker model caches would do
/// (ROADMAP "smarter batching"; Potamoi's unified streaming takes the same
/// position).
#[derive(Debug, Clone, Copy)]
pub struct SceneAffinity {
    /// Number of worker lanes the pool is partitioned into (clamped to the
    /// pool size).
    pub lanes: usize,
}

impl Default for SceneAffinity {
    fn default() -> Self {
        SceneAffinity { lanes: 2 }
    }
}

impl PlacementPolicy for SceneAffinity {
    fn place(&self, job: &PlacementJob<'_>, pool: &WorkerPool) -> usize {
        let lanes = self.lanes.clamp(1, pool.len());
        let lane = (fnv1a(job.scene_key.as_bytes()) % lanes as u64) as usize;
        // Contiguous partition: the first `extra` lanes get one more worker.
        let per = pool.len() / lanes;
        let extra = pool.len() % lanes;
        let start = lane * per + lane.min(extra);
        let width = per + usize::from(lane < extra);
        (start..start + width)
            .min_by(|&a, &b| {
                pool.workers()[a]
                    .free_at()
                    .total_cmp(&pool.workers()[b].free_at())
            })
            .expect("lanes are never empty")
    }
}

// ---------------------------------------------------------------------------
// QoS / admission
// ---------------------------------------------------------------------------

/// What a [`QosPolicy`] traded away to admit a session.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Degradation {
    /// Warping window: (requested, granted). Stretching the window amortizes
    /// each expensive reference render over more warped targets — less pool
    /// load, more warp error.
    pub window: (usize, usize),
    /// Frame resolution in pixels: ((requested w, h), (granted w, h)).
    pub resolution: ((usize, usize), (usize, usize)),
}

/// A successful admission decision.
#[derive(Debug, Clone)]
pub struct QosAdmission {
    /// The session spec as granted (possibly degraded).
    pub spec: SessionSpec,
    /// The intrinsics as granted (possibly downsampled).
    pub intrinsics: Intrinsics,
    /// Load committed against the admission ledger.
    pub est_load: f64,
    /// What was degraded, if anything.
    pub degradation: Option<Degradation>,
}

/// Decides whether (and in what shape) a session is admitted.
pub trait QosPolicy: fmt::Debug + Send + Sync {
    /// Admits `spec` at `intrinsics`/`fps`, possibly degraded, committing
    /// the returned load to `ctl`; or rejects with the controller's error.
    fn admit(
        &self,
        spec: &SessionSpec,
        intrinsics: Intrinsics,
        fps: f64,
        ctl: &mut AdmissionController,
    ) -> Result<QosAdmission, AdmissionError>;
}

/// Default QoS: admit as requested or reject — the historical behavior of
/// [`AdmissionController::admit`], unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct RejectAtAdmission;

impl QosPolicy for RejectAtAdmission {
    fn admit(
        &self,
        spec: &SessionSpec,
        intrinsics: Intrinsics,
        fps: f64,
        ctl: &mut AdmissionController,
    ) -> Result<QosAdmission, AdmissionError> {
        let est_load = ctl.admit(spec, intrinsics, fps)?;
        Ok(QosAdmission {
            spec: spec.clone(),
            intrinsics,
            est_load,
            degradation: None,
        })
    }
}

/// Load-adaptive QoS: under load, degrade quality instead of rejecting
/// (ROADMAP "dynamic QoS"). The ladder tries, gentlest first:
///
/// 1. the session as requested,
/// 2. progressively stretched warping windows (×2 per rung up to
///    [`max_window`](Self::max_window); more targets amortize each reference
///    render, cutting the full-render share of the load estimate),
/// 3. at the longest window, progressively halved resolution (down to
///    [`min_resolution`](Self::min_resolution) on the shorter side).
///
/// The first rung that fits the admission ledger is granted and the
/// [`Degradation`] recorded in the
/// [`ServiceReport`](crate::ServiceReport::degradations); if nothing fits
/// the most-degraded rung's counting rejection is returned, so an overloaded
/// fleet still saturates gracefully.
#[derive(Debug, Clone, Copy)]
pub struct LoadAdaptiveDegrade {
    /// Longest warping window a session may be stretched to.
    pub max_window: usize,
    /// Smallest granted width/height, in pixels.
    pub min_resolution: usize,
}

impl Default for LoadAdaptiveDegrade {
    fn default() -> Self {
        LoadAdaptiveDegrade {
            max_window: 24,
            min_resolution: 64,
        }
    }
}

impl QosPolicy for LoadAdaptiveDegrade {
    fn admit(
        &self,
        spec: &SessionSpec,
        intrinsics: Intrinsics,
        fps: f64,
        ctl: &mut AdmissionController,
    ) -> Result<QosAdmission, AdmissionError> {
        // (window, downsample factor) rungs, gentlest first. Baseline
        // sessions have no warping window to stretch.
        let mut rungs: Vec<(usize, usize)> = vec![(spec.config.window, 1)];
        if spec.config.variant != Variant::Baseline {
            let mut w = spec.config.window.max(1);
            while w < self.max_window {
                w = (w * 2).min(self.max_window);
                rungs.push((w, 1));
            }
        }
        let widest = rungs.last().expect("rungs never empty").0;
        let mut f = 2usize;
        while intrinsics.width / f >= self.min_resolution
            && intrinsics.height / f >= self.min_resolution
        {
            rungs.push((widest, f));
            f *= 2;
        }

        for (i, &(window, factor)) in rungs.iter().enumerate() {
            let mut granted = spec.clone();
            granted.config.window = window;
            let k = intrinsics.downsampled(factor);
            let load = ctl.estimate_load(&granted, k, fps);
            if !ctl.would_fit(load) && i + 1 < rungs.len() {
                continue;
            }
            // First fitting rung — or the last one, whose counting admit
            // produces the same rejection accounting as the default policy.
            let est_load = ctl.admit(&granted, k, fps)?;
            let degradation = (i > 0).then_some(Degradation {
                window: (spec.config.window, window),
                resolution: ((intrinsics.width, intrinsics.height), (k.width, k.height)),
            });
            return Ok(QosAdmission {
                spec: granted,
                intrinsics: k,
                est_load,
                degradation,
            });
        }
        unreachable!("the ladder always contains the as-requested rung")
    }
}

// ---------------------------------------------------------------------------
// Prefetch
// ---------------------------------------------------------------------------

/// Decides how much speculative reference rendering a dispatch round may do.
///
/// The scheduler enumerates prefetch candidates (each live session's
/// upcoming off-stream references beyond the demand horizon, not yet cached
/// or planned) in session-id order and issues the first
/// [`budget`](Self::budget) of them. Prefetched renders go into the shared
/// [`RefCache`](crate::RefCache) **without** being installed into their
/// session, so the later demand lookup scores an ordinary (accounted) hit —
/// hit/waste accounting lives in
/// [`RefCacheStats`](crate::RefCacheStats).
pub trait PrefetchPolicy: fmt::Debug + Send + Sync {
    /// Extra frames of reference lookahead (beyond the demand horizon) to
    /// scan for candidates; `0` disables prefetch entirely and the scheduler
    /// skips candidate collection.
    fn extra_horizon(&self, window: usize) -> usize;

    /// Number of speculative renders this dispatch round may issue, given
    /// the round's demand-job count. Must depend on **simulated state only**
    /// (never the host thread budget), so reports stay bit-identical at any
    /// budget.
    fn budget(&self, demand_jobs: usize, pool: &WorkerPool) -> usize;
}

/// Default prefetch: none — the historical demand-only scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetch;

impl PrefetchPolicy for NoPrefetch {
    fn extra_horizon(&self, _window: usize) -> usize {
        0
    }

    fn budget(&self, _demand_jobs: usize, _pool: &WorkerPool) -> usize {
        0
    }
}

/// Idle-worker prefetch: when a round's demand jobs leave simulated workers
/// without a reference to render, fill them with the **next** window's
/// predicted references (ROADMAP "cache policies"). The budget is
/// `pool workers − demand jobs` — a simulated-occupancy notion, so the
/// decision is identical at every host thread budget.
#[derive(Debug, Clone, Copy)]
pub struct IdleWorkerPrefetch {
    /// How many windows past the demand horizon to predict into.
    pub windows: usize,
}

impl Default for IdleWorkerPrefetch {
    fn default() -> Self {
        IdleWorkerPrefetch { windows: 1 }
    }
}

impl PrefetchPolicy for IdleWorkerPrefetch {
    fn extra_horizon(&self, window: usize) -> usize {
        self.windows * window.max(1)
    }

    fn budget(&self, demand_jobs: usize, pool: &WorkerPool) -> usize {
        pool.len().saturating_sub(demand_jobs)
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// How the server recovers from injected (or, eventually, real) faults —
/// the policy side of [`crate::fault`].
///
/// The recovery **ladder** for a failed reference render, gentlest first:
///
/// 1. retry on a fresh worker after [`backoff_s`](Self::backoff_s), up to
///    [`max_attempts`](Self::max_attempts) total attempts (the crashed
///    worker is quarantined for [`quarantine_s`](Self::quarantine_s));
/// 2. warp from the **best stale cached reference** within the pose-error
///    radius ([`stale_pos_radius`](Self::stale_pos_radius) /
///    [`stale_rot_radius`](Self::stale_rot_radius)) — Cicero's warping math
///    tolerates bounded pose error, which makes stale references a valid
///    degraded warp source exactly the way `LoadAdaptiveDegrade` makes
///    stretched windows a valid degraded schedule;
/// 3. a final guaranteed (degraded) re-render when nothing is in radius.
///
/// Target frames retry without rungs 2–3 (their pixels exist host-side; a
/// crash only costs simulated time), and a per-frame **watchdog** converts
/// fault-caused deadline overruns within
/// [`watchdog_slack_s`](Self::watchdog_slack_s) into accounted grants
/// instead of silent misses.
///
/// Implementations obey the same determinism contract as every other policy
/// here: decisions are pure functions of the inputs handed over — never
/// wall-clock, host parallelism or ambient state.
pub trait RecoveryPolicy: fmt::Debug + Send + Sync {
    /// Total render attempts (including the first) before falling back.
    fn max_attempts(&self) -> u32;

    /// Deterministic backoff before retry number `attempt` (1-based, the
    /// attempt that just failed), given the job's priced duration.
    fn backoff_s(&self, attempt: u32, base_duration_s: f64) -> f64;

    /// Largest position error (world units) a stale reference may have from
    /// the intended pose and still serve as a fallback warp source.
    fn stale_pos_radius(&self) -> f32;

    /// Largest rotation error (radians) a stale fallback reference may have.
    fn stale_rot_radius(&self) -> f32;

    /// How long a crashed worker stays out of rotation, given the failed
    /// job's priced duration.
    fn quarantine_s(&self, base_duration_s: f64) -> f64;

    /// Deadline slack within which the watchdog converts a fault-affected
    /// overrun into a grant, given the session's frame interval.
    fn watchdog_slack_s(&self, frame_interval_s: f64) -> f64;
}

/// Default recovery: bounded retries with exponential backoff, then the
/// stale-warp / degraded-re-render ladder.
#[derive(Debug, Clone, Copy)]
pub struct RetryWithBackoff {
    /// Total attempts including the first.
    pub max_attempts: u32,
    /// Backoff = `base_duration · factor · 2^(attempt−1)`.
    pub backoff_factor: f64,
    /// Stale-fallback position radius, world units.
    pub stale_pos_radius: f32,
    /// Stale-fallback rotation radius, radians.
    pub stale_rot_radius: f32,
    /// Quarantine = `base_duration · quarantine_factor`.
    pub quarantine_factor: f64,
    /// Watchdog slack in frame intervals past the deadline.
    pub watchdog_slack_frames: f64,
}

impl Default for RetryWithBackoff {
    fn default() -> Self {
        RetryWithBackoff {
            max_attempts: 3,
            backoff_factor: 0.5,
            stale_pos_radius: 0.75,
            stale_rot_radius: 0.6,
            quarantine_factor: 4.0,
            watchdog_slack_frames: 8.0,
        }
    }
}

impl RecoveryPolicy for RetryWithBackoff {
    fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    fn backoff_s(&self, attempt: u32, base_duration_s: f64) -> f64 {
        base_duration_s * self.backoff_factor * f64::from(1u32 << (attempt - 1).min(16))
    }

    fn stale_pos_radius(&self) -> f32 {
        self.stale_pos_radius
    }

    fn stale_rot_radius(&self) -> f32 {
        self.stale_rot_radius
    }

    fn quarantine_s(&self, base_duration_s: f64) -> f64 {
        base_duration_s * self.quarantine_factor
    }

    fn watchdog_slack_s(&self, frame_interval_s: f64) -> f64 {
        frame_interval_s * self.watchdog_slack_frames
    }
}

// ---------------------------------------------------------------------------
// Shard routing (fleet)
// ---------------------------------------------------------------------------

/// One shard's state, as a [`ShardRoutingPolicy`] sees it. Candidates are
/// always presented in ascending shard order and contain **alive** shards
/// only.
#[derive(Debug, Clone, Copy)]
pub struct ShardCandidate {
    /// The shard's index in the fleet.
    pub shard: usize,
    /// Worker occupancy committed on the shard's admission ledger.
    pub committed_load: f64,
    /// The shard's admissible capacity (workers × max-utilization).
    pub capacity: f64,
    /// Sessions currently resident on the shard.
    pub sessions: usize,
    /// Failover only: pose error (position, world units) of the warmest
    /// compatible reference in this shard's cache to the migrating session's
    /// next needed pose, via [`RefCache::best_within`](crate::RefCache::best_within).
    /// `None` at admission, or when the shard's cache has nothing in radius.
    pub warm_pos_error: Option<f32>,
}

/// Decides which [`Fleet`](crate::Fleet) shard owns a session — at admission
/// and again at failover, when a dead shard's sessions resume on survivors.
///
/// Same determinism contract as every other policy: decide from the
/// presented candidates only (simulated state), hash with [`fnv1a`], return
/// the `shard` field of one of the candidates. A routing decision changes
/// *placement*, never pixels — a migrated session replays its remaining
/// schedule bit-identically wherever it lands.
pub trait ShardRoutingPolicy: fmt::Debug + Send + Sync {
    /// Shard for a newly admitted session. `candidates` is never empty.
    fn admit(&self, scene_key: &str, candidates: &[ShardCandidate]) -> usize;

    /// Shard to resume a drained session on; `candidates` excludes the dead
    /// shard and is never empty. The default prefers cache warmth (smallest
    /// `warm_pos_error`), then the least committed load, then the lowest
    /// shard index — all total-ordered, so ties cannot flap.
    fn failover(&self, scene_key: &str, candidates: &[ShardCandidate]) -> usize {
        let _ = scene_key;
        candidates
            .iter()
            .min_by(|a, b| {
                let wa = a.warm_pos_error.unwrap_or(f32::INFINITY);
                let wb = b.warm_pos_error.unwrap_or(f32::INFINITY);
                wa.total_cmp(&wb)
                    .then(a.committed_load.total_cmp(&b.committed_load))
                    .then(a.shard.cmp(&b.shard))
            })
            .expect("failover candidates are never empty")
            .shard
    }
}

/// Default routing: a session lands on `fnv1a(scene_key) % shards`, so every
/// session of one scene shares a shard — the fleet-level analogue of
/// [`SceneAffinity`]'s model-weight residency, and the placement that makes
/// the reference cache actually shareable. Failover uses the default
/// warmth-first rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct SceneHashRouting;

impl ShardRoutingPolicy for SceneHashRouting {
    fn admit(&self, scene_key: &str, candidates: &[ShardCandidate]) -> usize {
        candidates[(fnv1a(scene_key.as_bytes()) % candidates.len() as u64) as usize].shard
    }
}

/// Load-balancing routing: a session lands on the alive shard with the most
/// spare committed capacity (capacity − committed load; ties to the lowest
/// shard index). Spreads one scene across shards — better load spread,
/// colder caches.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadedRouting;

impl ShardRoutingPolicy for LeastLoadedRouting {
    fn admit(&self, _scene_key: &str, candidates: &[ShardCandidate]) -> usize {
        candidates
            .iter()
            .min_by(|a, b| {
                let spare_a = a.capacity - a.committed_load;
                let spare_b = b.capacity - b.committed_load;
                spare_b.total_cmp(&spare_a).then(a.shard.cmp(&b.shard))
            })
            .expect("admission candidates are never empty")
            .shard
    }
}

// ---------------------------------------------------------------------------
// Bundle
// ---------------------------------------------------------------------------

/// The server's policy bundle, carried by
/// [`ServeConfig`](crate::ServeConfig). Defaults reproduce the historical
/// hard-coded scheduler bit-for-bit.
#[derive(Debug, Clone)]
pub struct Policies {
    /// Worker placement for references, targets and prefetches.
    pub placement: Arc<dyn PlacementPolicy>,
    /// Admission-time QoS strategy.
    pub qos: Arc<dyn QosPolicy>,
    /// Speculative reference rendering.
    pub prefetch: Arc<dyn PrefetchPolicy>,
    /// Fault recovery (retry / fallback / watchdog). Only consulted when
    /// [`ServeConfig::faults`](crate::ServeConfig::faults) arms an injector,
    /// so swapping it is a no-op on fault-free runs.
    pub recovery: Arc<dyn RecoveryPolicy>,
}

impl Default for Policies {
    fn default() -> Self {
        Policies {
            placement: Arc::new(LeastLoaded),
            qos: Arc::new(RejectAtAdmission),
            prefetch: Arc::new(NoPrefetch),
            recovery: Arc::new(RetryWithBackoff::default()),
        }
    }
}

impl Policies {
    /// The bundle a CLI-facing policy name denotes — one non-default
    /// implementation swapped in per name, default parameters. The single
    /// source of truth for `serve_swarm --policy` and the `policy_baseline`
    /// bench; `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Policies> {
        match name {
            "default" => Some(Policies::default()),
            "affinity" => Some(Policies::default().with_placement(SceneAffinity::default())),
            "degrade" => Some(Policies::default().with_qos(LoadAdaptiveDegrade::default())),
            "prefetch" => Some(Policies::default().with_prefetch(IdleWorkerPrefetch::default())),
            _ => None,
        }
    }

    /// Replaces the placement policy.
    pub fn with_placement(mut self, p: impl PlacementPolicy + 'static) -> Self {
        self.placement = Arc::new(p);
        self
    }

    /// Replaces the QoS policy.
    pub fn with_qos(mut self, q: impl QosPolicy + 'static) -> Self {
        self.qos = Arc::new(q);
        self
    }

    /// Replaces the prefetch policy.
    pub fn with_prefetch(mut self, p: impl PrefetchPolicy + 'static) -> Self {
        self.prefetch = Arc::new(p);
        self
    }

    /// Replaces the recovery policy.
    pub fn with_recovery(mut self, r: impl RecoveryPolicy + 'static) -> Self {
        self.recovery = Arc::new(r);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::QosClass;
    use cicero::PipelineConfig;
    use cicero_accel::pool::PoolConfig;

    fn spec(window: usize) -> SessionSpec {
        SessionSpec {
            name: "t".into(),
            scene_key: "lego".into(),
            qos: QosClass::Standard,
            start_offset_s: 0.0,
            config: PipelineConfig {
                window,
                ..Default::default()
            },
        }
    }

    #[test]
    fn least_loaded_matches_pool_choice() {
        let mut pool = WorkerPool::new(PoolConfig {
            workers: 3,
            ..Default::default()
        });
        pool.assign(0, 0.0, 5.0);
        pool.assign(1, 0.0, 1.0);
        let job = PlacementJob {
            kind: JobKind::Target,
            session: 0,
            scene_key: "lego",
            ready_at_s: 0.0,
        };
        assert_eq!(LeastLoaded.place(&job, &pool), pool.least_loaded());
    }

    #[test]
    fn scene_affinity_is_sticky_and_lane_local() {
        let mut pool = WorkerPool::new(PoolConfig {
            workers: 6,
            ..Default::default()
        });
        let policy = SceneAffinity { lanes: 2 };
        let job = |scene: &'static str| PlacementJob {
            kind: JobKind::Reference,
            session: 0,
            scene_key: scene,
            ready_at_s: 0.0,
        };
        // Repeated placements of one scene stay within one 3-worker lane,
        // regardless of load elsewhere.
        let first = policy.place(&job("lego"), &pool);
        let lane = first / 3;
        for _ in 0..8 {
            let w = policy.place(&job("lego"), &pool);
            assert_eq!(w / 3, lane, "scene hopped lanes");
            pool.assign(w, 0.0, 1.0);
        }
        // A pool-wide least-loaded choice would have drifted to the other
        // lane, which is still completely idle.
        let other_lane_start = (1 - lane) * 3;
        assert!(pool.workers()[other_lane_start].busy_seconds() == 0.0);
    }

    #[test]
    fn degrade_prefers_window_stretch_then_resolution() {
        let policy = LoadAdaptiveDegrade {
            max_window: 16,
            min_resolution: 32,
        };
        let k = Intrinsics::from_fov(128, 128, 0.9);
        // Capacity that fits the session only after degradation.
        let mut ctl = AdmissionController::new(
            crate::AdmissionPolicy {
                max_utilization: 0.2,
                ..Default::default()
            },
            1,
            10.0,
        );
        let adm = policy.admit(&spec(4), k, 30.0, &mut ctl).unwrap();
        let d = adm.degradation.expect("session must degrade to fit");
        assert!(d.window.1 > d.window.0 || d.resolution.1 .0 < d.resolution.0 .0);
        assert_eq!(adm.spec.config.window, d.window.1);
        assert!(ctl.committed_load() > 0.0);
        // The granted shape fits what the controller admitted.
        assert!(adm.est_load <= ctl.capacity());
    }

    #[test]
    fn degrade_rejects_when_even_the_floor_does_not_fit() {
        let policy = LoadAdaptiveDegrade {
            max_window: 8,
            min_resolution: 64,
        };
        let k = Intrinsics::from_fov(128, 128, 0.9);
        let mut ctl = AdmissionController::new(
            crate::AdmissionPolicy {
                max_utilization: 1e-6,
                ..Default::default()
            },
            1,
            10.0,
        );
        assert!(matches!(
            policy.admit(&spec(4), k, 30.0, &mut ctl),
            Err(AdmissionError::Saturated { .. })
        ));
        assert_eq!(ctl.rejected(), 1);
    }

    #[test]
    fn idle_worker_prefetch_budget_is_simulated_state_only() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 4,
            ..Default::default()
        });
        let p = IdleWorkerPrefetch::default();
        assert_eq!(p.budget(0, &pool), 4);
        assert_eq!(p.budget(3, &pool), 1);
        assert_eq!(p.budget(9, &pool), 0);
        assert_eq!(p.extra_horizon(6), 6);
        assert_eq!(NoPrefetch.budget(0, &pool), 0);
    }

    #[test]
    fn scene_hash_routing_is_sticky_and_in_range() {
        let candidates: Vec<ShardCandidate> = (0..4)
            .map(|shard| ShardCandidate {
                shard,
                committed_load: shard as f64,
                capacity: 5.1,
                sessions: 0,
                warm_pos_error: None,
            })
            .collect();
        for scene in ["lego", "chair", "ship", "hotdog"] {
            let first = SceneHashRouting.admit(scene, &candidates);
            assert!(candidates.iter().any(|c| c.shard == first));
            for _ in 0..4 {
                assert_eq!(SceneHashRouting.admit(scene, &candidates), first);
            }
        }
        // Least-loaded admission picks the sparest shard (0 here).
        assert_eq!(LeastLoadedRouting.admit("lego", &candidates), 0);
    }

    #[test]
    fn default_failover_prefers_warmth_then_load_then_id() {
        let c = |shard, committed_load, warm| ShardCandidate {
            shard,
            committed_load,
            capacity: 5.1,
            sessions: 1,
            warm_pos_error: warm,
        };
        // Warmth beats load.
        let got = SceneHashRouting.failover("lego", &[c(0, 0.0, None), c(2, 4.0, Some(0.3))]);
        assert_eq!(got, 2);
        // Equal warmth: least committed load.
        let got = SceneHashRouting.failover("lego", &[c(0, 2.0, Some(0.5)), c(1, 1.0, Some(0.5))]);
        assert_eq!(got, 1);
        // Full tie: lowest shard id.
        let got = SceneHashRouting.failover("lego", &[c(3, 1.0, Some(0.5)), c(1, 1.0, Some(0.5))]);
        assert_eq!(got, 1);
    }

    #[test]
    fn retry_backoff_is_deterministic_and_monotonic() {
        let r = RetryWithBackoff::default();
        assert!(r.max_attempts() >= 1);
        assert!(r.backoff_s(1, 0.1) > 0.0);
        assert!(r.backoff_s(1, 0.1) < r.backoff_s(2, 0.1));
        assert_eq!(r.backoff_s(2, 0.1), r.backoff_s(2, 0.1));
        assert!(r.quarantine_s(0.1) > 0.0);
        assert!(r.watchdog_slack_s(1.0 / 30.0) > 0.0);
        assert!(r.stale_pos_radius() > 0.0 && r.stale_rot_radius() > 0.0);
    }
}
