//! Service-level reporting: throughput, tail latency, deadline misses,
//! per-session quality, QoS degradations and prefetch economics.

use crate::cache::RefCacheStats;
use crate::fault::FaultReport;
use crate::policy::Degradation;
use crate::session::{QosClass, SessionId};
use serde::Serialize;

/// One QoS degradation granted at admission: which session, and what the
/// [`QosPolicy`](crate::policy::QosPolicy) traded away to admit it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DegradationRecord {
    /// The admitted session.
    pub session: SessionId,
    /// The session's name (from its spec).
    pub name: String,
    /// What was degraded.
    pub degradation: Degradation,
}

/// One served frame, as the scheduler saw it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FrameRecord {
    /// The session the frame belongs to.
    pub session: SessionId,
    /// Trajectory frame index within the session.
    pub frame_index: usize,
    /// When the client expected the frame, simulated seconds.
    pub arrival_s: f64,
    /// When a worker started it.
    pub start_s: f64,
    /// When it completed.
    pub completion_s: f64,
    /// Its QoS deadline.
    pub deadline_s: f64,
    /// Worker that executed it.
    pub worker: usize,
    /// Whether it was a full (reference/bootstrap) render.
    pub full_render: bool,
}

impl FrameRecord {
    /// Client-observed latency: completion minus expected arrival.
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }

    /// Whether the frame missed its deadline.
    pub fn missed_deadline(&self) -> bool {
        self.completion_s > self.deadline_s
    }
}

/// Per-session aggregate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionSummary {
    /// Session id.
    pub id: SessionId,
    /// Session name (from the spec).
    pub name: String,
    /// QoS class.
    pub qos: QosClass,
    /// Frames served.
    pub frames: usize,
    /// Mean client-observed latency, seconds.
    pub mean_latency_s: f64,
    /// Worst client-observed latency, seconds.
    pub max_latency_s: f64,
    /// Frames past their deadline.
    pub deadline_misses: u64,
    /// MSE-averaged PSNR over quality-sampled frames, dB (NaN if quality
    /// collection was off).
    pub mean_psnr_db: f64,
    /// Reference frames this session obtained from the shared cache.
    pub cache_hits: u64,
}

/// Overload-control accounting for one [`crate::FrameServer::run`], carried
/// on [`ServiceReport::overload`]. All quantities are simulated time only, so
/// the report is bit-identical at any host thread budget.
///
/// A server without an armed [`OverloadControl`](crate::OverloadControl) —
/// or an armed one that never queued, shed or pushed back — reports exactly
/// [`OverloadReport::default()`]: all counters zero, `goodput_fps` zero,
/// per-class SLO attainment `1.0`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OverloadReport {
    /// Submissions that entered the pending-admission queue instead of
    /// admitting immediately.
    pub enqueued: u64,
    /// Queued submissions later admitted at full fidelity once load drained.
    pub queue_admits: u64,
    /// Queued submissions admitted through the brownout ladder (degraded)
    /// when their SLO deadline arrived before capacity did.
    pub brownout_admits: u64,
    /// Submissions shed from the queue: the deadline-aware victim predicted
    /// to miss its SLO, not the newest arrival.
    pub sheds: u64,
    /// Sheds by QoS class, indexed by
    /// [`QosClass::priority`](crate::QosClass::priority)
    /// (interactive, standard, best-effort).
    pub sheds_by_class: [u64; 3],
    /// Frames the shed sessions would have served, by QoS class — the demand
    /// denominator behind [`slo_attainment`](Self::slo_attainment).
    pub shed_frames_by_class: [u64; 3],
    /// Submissions pushed back with
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded) because the
    /// queue was full and the incoming request was the worst SLO risk.
    pub backpressure: u64,
    /// Admissions a [`Fleet`](crate::Fleet) diverted off their primary shard
    /// to a sibling with headroom (divert before shed). Always zero on a
    /// bare server.
    pub diversions: u64,
    /// Deepest the pending queue ever got.
    pub queue_peak: u64,
    /// Queue-depth histogram, sampled at each enqueue: depth buckets
    /// `0, 1, 2–3, 4–7, 8–15, 16+` *before* the new entry joins.
    pub queue_depth_hist: [u64; 6],
    /// Longest simulated wait between enqueue and admission, seconds.
    pub max_queue_wait_s: f64,
    /// On-time frames per second of makespan: throughput that met its
    /// deadline. Goodput ≤ throughput by construction.
    pub goodput_fps: f64,
    /// Per-class SLO attainment: on-time served frames over demanded frames
    /// (served + shed), indexed like [`sheds_by_class`](Self::sheds_by_class).
    /// A class with no demand reports `1.0`.
    pub slo_attainment: [f64; 3],
}

impl Default for OverloadReport {
    fn default() -> Self {
        OverloadReport {
            enqueued: 0,
            queue_admits: 0,
            brownout_admits: 0,
            sheds: 0,
            sheds_by_class: [0; 3],
            shed_frames_by_class: [0; 3],
            backpressure: 0,
            diversions: 0,
            queue_peak: 0,
            queue_depth_hist: [0; 6],
            max_queue_wait_s: 0.0,
            goodput_fps: 0.0,
            slo_attainment: [1.0; 3],
        }
    }
}

impl OverloadReport {
    /// Whether any overload machinery actually engaged (queueing, shedding,
    /// backpressure or diversion). `false` on every disarmed or underloaded
    /// run.
    pub fn engaged(&self) -> bool {
        self.enqueued > 0 || self.sheds > 0 || self.backpressure > 0 || self.diversions > 0
    }

    /// The histogram bucket for a queue depth: `0, 1, 2–3, 4–7, 8–15, 16+`.
    pub fn depth_bucket(depth: usize) -> usize {
        match depth {
            0 => 0,
            1 => 1,
            2..=3 => 2,
            4..=7 => 3,
            8..=15 => 4,
            _ => 5,
        }
    }
}

/// Aggregate serving statistics for one [`crate::FrameServer::run`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceReport {
    /// Every served frame, in dispatch (readiness) order. With one worker
    /// this coincides with completion order; across several workers
    /// completion times may interleave.
    pub records: Vec<FrameRecord>,
    /// Per-session aggregates, in admission order.
    pub sessions: Vec<SessionSummary>,
    /// Total frames served.
    pub frames: usize,
    /// End-to-end simulated makespan, seconds.
    pub makespan_s: f64,
    /// Aggregate throughput: frames / makespan.
    pub throughput_fps: f64,
    /// Median client-observed latency, seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile client-observed latency, seconds.
    pub p99_latency_s: f64,
    /// Frames that missed their QoS deadline.
    pub deadline_misses: u64,
    /// Miss fraction over all frames.
    pub deadline_miss_rate: f64,
    /// Reference-cache counters.
    pub cache: RefCacheStats,
    /// Reference renders dispatched to the pool (cache misses that became
    /// batch jobs, plus speculative prefetch renders).
    pub reference_jobs: u64,
    /// Speculative reference renders issued by the prefetch policy (also
    /// included in `reference_jobs`); their hit/waste economics live in
    /// [`cache`](Self::cache).
    pub prefetch_jobs: u64,
    /// QoS degradations granted at admission, in admission order. Empty
    /// under the default reject-at-admission policy.
    pub degradations: Vec<DegradationRecord>,
    /// Mean worker utilization over the makespan.
    pub pool_utilization: f64,
    /// Workers in the pool.
    pub workers: usize,
    /// Fault-injection and recovery accounting. Exactly
    /// [`FaultReport::default()`] (all zero, availability `1.0`) on a server
    /// without an armed [`FaultPlan`](crate::FaultPlan) — or with one that
    /// never fired.
    pub faults: FaultReport,
    /// Overload-control accounting. Exactly [`OverloadReport::default()`] on
    /// a server without an armed [`OverloadControl`](crate::OverloadControl)
    /// — or with one that never engaged.
    pub overload: OverloadReport,
}

impl ServiceReport {
    /// `q`-th percentile (0–100) of client-observed latency.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let mut lat: Vec<f64> = self.records.iter().map(FrameRecord::latency_s).collect();
        percentile(&mut lat, q)
    }
}

/// Nearest-rank percentile of `values` (sorted in place); NaN when empty.
pub fn percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(f64::total_cmp);
    let rank = ((q / 100.0) * (values.len() - 1) as f64).round() as usize;
    values[rank.min(values.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 100.0), 4.0);
        assert_eq!(percentile(&mut v, 50.0), 3.0); // rank round(1.5) = 2
        assert!(percentile(&mut [], 50.0).is_nan());
    }

    #[test]
    fn percentile_empty_is_nan_at_every_rank() {
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert!(percentile(&mut [], q).is_nan());
        }
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        for q in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&mut [7.25], q), 7.25);
        }
    }

    #[test]
    fn percentile_p0_p100_are_min_max() {
        let mut v = vec![9.0, -3.0, 5.0, 0.5, 2.0];
        assert_eq!(percentile(&mut v, 0.0), -3.0);
        assert_eq!(percentile(&mut v, 100.0), 9.0);
        // Over-range q clamps to the last element rather than indexing past
        // the end.
        assert_eq!(percentile(&mut v, 150.0), 9.0);
    }

    #[test]
    fn overload_default_is_disengaged_with_full_attainment() {
        let r = OverloadReport::default();
        assert!(!r.engaged());
        assert_eq!(r.slo_attainment, [1.0; 3]);
        assert_eq!(r.queue_depth_hist, [0; 6]);
    }

    #[test]
    fn depth_buckets_partition_the_depth_axis() {
        let want = [
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (15, 4),
            (16, 5),
            (1000, 5),
        ];
        for (depth, bucket) in want {
            assert_eq!(OverloadReport::depth_bucket(depth), bucket, "depth {depth}");
        }
    }

    #[test]
    fn percentile_sorts_its_input() {
        // Unsorted and reverse-sorted inputs agree with the sorted one: the
        // function owns the ordering, callers never pre-sort.
        let mut unsorted = vec![0.3, 0.1, 0.9, 0.7, 0.5];
        let mut reversed = vec![0.9, 0.7, 0.5, 0.3, 0.1];
        let mut sorted = vec![0.1, 0.3, 0.5, 0.7, 0.9];
        for q in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let want = percentile(&mut sorted, q);
            assert_eq!(percentile(&mut unsorted, q), want);
            assert_eq!(percentile(&mut reversed, q), want);
        }
    }
}
