//! Service-level reporting: throughput, tail latency, deadline misses,
//! per-session quality, QoS degradations and prefetch economics.

use crate::cache::RefCacheStats;
use crate::fault::FaultReport;
use crate::policy::Degradation;
use crate::session::{QosClass, SessionId};
use serde::Serialize;

/// One QoS degradation granted at admission: which session, and what the
/// [`QosPolicy`](crate::policy::QosPolicy) traded away to admit it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DegradationRecord {
    /// The admitted session.
    pub session: SessionId,
    /// The session's name (from its spec).
    pub name: String,
    /// What was degraded.
    pub degradation: Degradation,
}

/// One served frame, as the scheduler saw it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FrameRecord {
    /// The session the frame belongs to.
    pub session: SessionId,
    /// Trajectory frame index within the session.
    pub frame_index: usize,
    /// When the client expected the frame, simulated seconds.
    pub arrival_s: f64,
    /// When a worker started it.
    pub start_s: f64,
    /// When it completed.
    pub completion_s: f64,
    /// Its QoS deadline.
    pub deadline_s: f64,
    /// Worker that executed it.
    pub worker: usize,
    /// Whether it was a full (reference/bootstrap) render.
    pub full_render: bool,
}

impl FrameRecord {
    /// Client-observed latency: completion minus expected arrival.
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }

    /// Whether the frame missed its deadline.
    pub fn missed_deadline(&self) -> bool {
        self.completion_s > self.deadline_s
    }
}

/// Per-session aggregate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionSummary {
    /// Session id.
    pub id: SessionId,
    /// Session name (from the spec).
    pub name: String,
    /// QoS class.
    pub qos: QosClass,
    /// Frames served.
    pub frames: usize,
    /// Mean client-observed latency, seconds.
    pub mean_latency_s: f64,
    /// Worst client-observed latency, seconds.
    pub max_latency_s: f64,
    /// Frames past their deadline.
    pub deadline_misses: u64,
    /// MSE-averaged PSNR over quality-sampled frames, dB (NaN if quality
    /// collection was off).
    pub mean_psnr_db: f64,
    /// Reference frames this session obtained from the shared cache.
    pub cache_hits: u64,
}

/// Aggregate serving statistics for one [`crate::FrameServer::run`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceReport {
    /// Every served frame, in dispatch (readiness) order. With one worker
    /// this coincides with completion order; across several workers
    /// completion times may interleave.
    pub records: Vec<FrameRecord>,
    /// Per-session aggregates, in admission order.
    pub sessions: Vec<SessionSummary>,
    /// Total frames served.
    pub frames: usize,
    /// End-to-end simulated makespan, seconds.
    pub makespan_s: f64,
    /// Aggregate throughput: frames / makespan.
    pub throughput_fps: f64,
    /// Median client-observed latency, seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile client-observed latency, seconds.
    pub p99_latency_s: f64,
    /// Frames that missed their QoS deadline.
    pub deadline_misses: u64,
    /// Miss fraction over all frames.
    pub deadline_miss_rate: f64,
    /// Reference-cache counters.
    pub cache: RefCacheStats,
    /// Reference renders dispatched to the pool (cache misses that became
    /// batch jobs, plus speculative prefetch renders).
    pub reference_jobs: u64,
    /// Speculative reference renders issued by the prefetch policy (also
    /// included in `reference_jobs`); their hit/waste economics live in
    /// [`cache`](Self::cache).
    pub prefetch_jobs: u64,
    /// QoS degradations granted at admission, in admission order. Empty
    /// under the default reject-at-admission policy.
    pub degradations: Vec<DegradationRecord>,
    /// Mean worker utilization over the makespan.
    pub pool_utilization: f64,
    /// Workers in the pool.
    pub workers: usize,
    /// Fault-injection and recovery accounting. Exactly
    /// [`FaultReport::default()`] (all zero, availability `1.0`) on a server
    /// without an armed [`FaultPlan`](crate::FaultPlan) — or with one that
    /// never fired.
    pub faults: FaultReport,
}

impl ServiceReport {
    /// `q`-th percentile (0–100) of client-observed latency.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let mut lat: Vec<f64> = self.records.iter().map(FrameRecord::latency_s).collect();
        percentile(&mut lat, q)
    }
}

/// Nearest-rank percentile of `values` (sorted in place); NaN when empty.
pub fn percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(f64::total_cmp);
    let rank = ((q / 100.0) * (values.len() - 1) as f64).round() as usize;
    values[rank.min(values.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 100.0), 4.0);
        assert_eq!(percentile(&mut v, 50.0), 3.0); // rank round(1.5) = 2
        assert!(percentile(&mut [], 50.0).is_nan());
    }

    #[test]
    fn percentile_empty_is_nan_at_every_rank() {
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert!(percentile(&mut [], q).is_nan());
        }
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        for q in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&mut [7.25], q), 7.25);
        }
    }

    #[test]
    fn percentile_p0_p100_are_min_max() {
        let mut v = vec![9.0, -3.0, 5.0, 0.5, 2.0];
        assert_eq!(percentile(&mut v, 0.0), -3.0);
        assert_eq!(percentile(&mut v, 100.0), 9.0);
        // Over-range q clamps to the last element rather than indexing past
        // the end.
        assert_eq!(percentile(&mut v, 150.0), 9.0);
    }

    #[test]
    fn percentile_sorts_its_input() {
        // Unsorted and reverse-sorted inputs agree with the sorted one: the
        // function owns the ordering, callers never pre-sort.
        let mut unsorted = vec![0.3, 0.1, 0.9, 0.7, 0.5];
        let mut reversed = vec![0.9, 0.7, 0.5, 0.3, 0.1];
        let mut sorted = vec![0.1, 0.3, 0.5, 0.7, 0.9];
        for q in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let want = percentile(&mut sorted, q);
            assert_eq!(percentile(&mut unsorted, q), want);
            assert_eq!(percentile(&mut reversed, q), want);
        }
    }
}
