//! The fleet: N independent [`FrameServer`] shards behind one router, with
//! shard-level fault domains, a health-checked failover path, and
//! **bit-identical** session migration.
//!
//! # Why shards
//!
//! One [`FrameServer`] is one fault domain: a single simulated pool, cache
//! and admission ledger. A deployment that must survive machine loss splits
//! capacity into shards that fail independently — the serving analogue of
//! the paper's multi-SoC scaling argument, applied to *availability* instead
//! of throughput. The [`Fleet`] owns the shards, routes each session to one
//! at admission (by scene hash or load; see
//! [`ShardRoutingPolicy`](crate::policy::ShardRoutingPolicy)), and
//! interleaves their scheduling rounds on one global simulated timeline.
//!
//! # Health model
//!
//! With an armed [`FaultPlan`](crate::FaultPlan), every shard is
//! heartbeat-checked each [`FleetConfig::heartbeat_interval_s`] of simulated
//! time. A heartbeat miss is a keyed idempotent draw —
//! `fires(ShardCrash, shard, heartbeat index, 0)` against the **base** plan
//! — so the health timeline is bit-identical at any host thread budget, like
//! everything else in this crate. [`FleetConfig::miss_threshold`]
//! *consecutive* misses declare the shard dead; a single missed beat
//! (network blip) merely resets on the next healthy one.
//! `fires(ShardBrownout, …)` instead stalls the shard's whole pool for
//! [`brownout_s`](crate::FaultPlan::brownout_s): the shard survives, its
//! frames run late. The per-shard servers draw their *own* worker/cache/pose
//! faults against shard-decorrelated seeds
//! ([`FaultPlan::for_shard`](crate::FaultPlan::for_shard)), so chaos is not
//! mirrored across shards — while shard 0 keeps the base seed, which makes a
//! fleet of one byte-identical to a bare server under the same plan.
//!
//! # Failover and migration determinism
//!
//! When a shard dies, its live sessions drain and resume on survivors. The
//! contract is **bit-identity**: a migrated session replays its remaining
//! schedule from its current position and produces exactly the frames it
//! would have produced unmigrated. That holds because pixels depend only on
//! the session's own pipeline state (which travels with it) — the
//! destination shard changes *when* frames are served (a
//! [`resume floor`](crate::session) at the failover time, new worker
//! clocks), never *what* is rendered. The router may peek survivor cache
//! warmth ([`RefCache::best_within`](crate::RefCache::best_within)) to pick
//! the destination, but the peek only steers placement; nothing is
//! installed.
//!
//! Sessions whose shard dies with **no** survivor are *lost*: their
//! already-served frames stay in the dead shard's report, their unserved
//! remainder counts against [`FleetReport::availability`].
//!
//! # One global timeline
//!
//! [`Fleet::run`] repeatedly picks the shard whose next batch is earliest
//! (pre-dispatch readiness lower bound; ties to the lowest shard index),
//! processes every heartbeat due at or before that time in
//! `(time, shard)` order, then runs one scheduling round on the earliest
//! alive shard. A shard therefore never serves a batch whose readiness
//! estimate lies at or after its declared death; the actual batch may
//! *complete* later (dispatch extends past the estimate), which is the
//! usual crash-consistency window — frames in flight at the death instant
//! were already irrevocably priced. Deterministic either way.

use crate::error::ServeError;
use crate::fault::{FaultKind, FaultPlan};
use crate::policy::{RecoveryPolicy, SceneHashRouting, ShardCandidate, ShardRoutingPolicy};
use crate::report::{percentile, FrameRecord, ServiceReport};
use crate::scheduler::{FrameServer, ServeConfig, SubmitOutcome, TicketId, TicketState};
use crate::session::{SessionId, SessionSpec};
use cicero_field::NerfModel;
use cicero_math::{Intrinsics, Pose};
use cicero_scene::{AnalyticScene, Trajectory};
use cicero_telemetry as telemetry;
use serde::Serialize;
use std::sync::Arc;

/// Fleet shape and health-model knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of independent [`FrameServer`] shards (≥ 1).
    pub shards: usize,
    /// Per-shard server configuration. Every shard gets an identical copy,
    /// except that an armed [`ServeConfig::faults`] plan is re-seeded per
    /// shard via [`FaultPlan::for_shard`] (shard 0 unchanged).
    pub base: ServeConfig,
    /// Session→shard routing, at admission and failover.
    pub routing: Arc<dyn ShardRoutingPolicy>,
    /// Simulated seconds between health checks of each shard.
    pub heartbeat_interval_s: f64,
    /// Consecutive heartbeat misses that declare a shard dead.
    pub miss_threshold: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 1,
            base: ServeConfig::default(),
            routing: Arc::new(SceneHashRouting),
            heartbeat_interval_s: 0.05,
            miss_threshold: 2,
        }
    }
}

/// One failover migration: a session drained from a dead shard and resumed
/// on a survivor.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MigrationRecord {
    /// Fleet-level session id.
    pub session: SessionId,
    /// The session's human-readable name.
    pub name: String,
    /// The shard that died.
    pub from_shard: usize,
    /// The surviving shard that adopted the session.
    pub to_shard: usize,
    /// Simulated time the source shard was declared dead.
    pub at_s: f64,
    /// Completion time of the session's first frame on the destination, or
    /// `-1.0` if it never served there (starved stream, or the destination
    /// died too).
    pub resumed_s: f64,
    /// `resumed_s - at_s`, or `-1.0` if the session never resumed.
    pub time_to_resume_s: f64,
}

/// The fleet-wide service report: per-shard [`ServiceReport`]s plus
/// aggregates and the failover ledger. Bit-identical at any host thread
/// budget, like the per-shard reports it is built from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Per-shard reports, in shard order (dead shards included — their
    /// records end at the death time).
    pub shards: Vec<ServiceReport>,
    /// Frames served fleet-wide.
    pub frames: usize,
    /// Latest completion across all shards, simulated seconds.
    pub makespan_s: f64,
    /// `frames / makespan_s`.
    pub throughput_fps: f64,
    /// Median frame latency over every record fleet-wide.
    pub p50_latency_s: f64,
    /// 99th-percentile frame latency fleet-wide.
    pub p99_latency_s: f64,
    /// Deadline misses fleet-wide.
    pub deadline_misses: u64,
    /// `deadline_misses / frames`.
    pub deadline_miss_rate: f64,
    /// Fraction of client-expected frames that were served and recovered:
    /// `1 − (unrecovered + lost) / (served + lost)`. Watchdog-granted
    /// fault overruns count as available; frames of lost sessions and
    /// beyond-slack overruns do not.
    pub availability: f64,
    /// Shards declared dead.
    pub shard_crashes: u64,
    /// Whole-shard brownouts injected.
    pub shard_brownouts: u64,
    /// Heartbeat misses drawn (including the ones that killed shards).
    pub heartbeat_misses: u64,
    /// Admissions diverted off their primary shard to a sibling with
    /// immediate headroom — the fleet's **divert before shed** leg of the
    /// overload ladder. Always zero without an armed
    /// [`OverloadControl`](crate::OverloadControl) on the base config.
    pub diversions: u64,
    /// Every failover migration, in occurrence order.
    pub migrations: Vec<MigrationRecord>,
    /// Sessions lost because their shard died with no survivor.
    pub lost_sessions: u64,
    /// Client-expected frames those lost sessions never served.
    pub lost_frames: u64,
    /// Shards still alive at the end of the run.
    pub alive_shards: usize,
}

/// A sharded fleet of [`FrameServer`]s on one simulated timeline.
///
/// Sessions are submitted to the fleet, which routes them to a shard and
/// hands back a **fleet-level** id; pose ingestion and stream close follow
/// the session to wherever failover moved it. See the module docs for the
/// health and migration model.
pub struct Fleet<'a> {
    cfg: FleetConfig,
    recovery: Arc<dyn RecoveryPolicy>,
    servers: Vec<FrameServer<'a>>,
    alive: Vec<bool>,
    /// Heartbeats already processed per shard (dead shards stop beating).
    hb_count: Vec<u64>,
    /// Consecutive misses per shard; reset by every healthy beat.
    misses: Vec<u32>,
    /// Fleet session id → current `(shard, local id)`; `None` = lost.
    homes: Vec<Option<(usize, SessionId)>>,
    names: Vec<String>,
    migrations: Vec<MigrationRecord>,
    /// Destination `(shard, local id)` per migration record, for resolving
    /// `resumed_s` against the destination's frame records at report time.
    migration_dest: Vec<(usize, SessionId)>,
    /// Fleet ticket → the shard and shard-local ticket holding it.
    ticket_homes: Vec<(usize, TicketId)>,
    /// Session names for queued submissions, applied at admission.
    ticket_names: Vec<String>,
    /// Fleet-level ticket resolutions; `Admitted` carries the **fleet** id.
    ticket_states: Vec<TicketState>,
    diversions: u64,
    heartbeat_misses: u64,
    shard_crashes: u64,
    shard_brownouts: u64,
    lost_sessions: u64,
    lost_frames: u64,
}

impl<'a> Fleet<'a> {
    /// Builds the fleet: `cfg.shards` independent servers, each with its
    /// shard-decorrelated fault plan.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is zero, the heartbeat interval is not
    /// positive, or the miss threshold is zero.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.shards >= 1, "a fleet needs at least one shard");
        assert!(
            cfg.heartbeat_interval_s > 0.0,
            "heartbeat interval must be positive"
        );
        assert!(cfg.miss_threshold >= 1, "miss threshold must be at least 1");
        let servers = (0..cfg.shards)
            .map(|i| {
                let mut shard_cfg = cfg.base.clone();
                shard_cfg.faults = cfg.base.faults.map(|p| p.for_shard(i));
                FrameServer::new(shard_cfg)
            })
            .collect();
        Fleet {
            recovery: cfg.base.policies.recovery.clone(),
            servers,
            alive: vec![true; cfg.shards],
            hb_count: vec![0; cfg.shards],
            misses: vec![0; cfg.shards],
            homes: Vec::new(),
            names: Vec::new(),
            migrations: Vec::new(),
            migration_dest: Vec::new(),
            ticket_homes: Vec::new(),
            ticket_names: Vec::new(),
            ticket_states: Vec::new(),
            diversions: 0,
            heartbeat_misses: 0,
            shard_crashes: 0,
            shard_brownouts: 0,
            lost_sessions: 0,
            lost_frames: 0,
            cfg,
        }
    }

    /// Shards still alive.
    pub fn alive_shards(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Fleet-level sessions admitted so far (including lost ones).
    pub fn session_count(&self) -> usize {
        self.homes.len()
    }

    /// The alive shards as routing candidates, in ascending shard order.
    /// `warmth` optionally probes each shard's reference cache for the given
    /// `(cache key, intrinsics, pose)` — failover only; admission passes
    /// `None` because a fresh session has no position yet.
    fn candidates(&self, warmth: Option<(&str, Intrinsics, &Pose)>) -> Vec<ShardCandidate> {
        (0..self.cfg.shards)
            .filter(|&i| self.alive[i])
            .map(|i| {
                let server = &self.servers[i];
                let warm_pos_error = warmth.and_then(|(key, intrinsics, pose)| {
                    server
                        .cache()
                        .best_within(
                            key,
                            intrinsics,
                            pose,
                            self.recovery.stale_pos_radius(),
                            self.recovery.stale_rot_radius(),
                        )
                        .map(|hit| (hit.pose.position - pose.position).length())
                });
                ShardCandidate {
                    shard: i,
                    committed_load: server.admission().committed_load(),
                    capacity: server.admission().capacity(),
                    sessions: server.session_count(),
                    warm_pos_error,
                }
            })
            .collect()
    }

    /// Routes a new session to an alive shard, or [`ServeError::FleetDown`].
    fn route_admission(&self, scene_key: &str) -> Result<usize, ServeError> {
        let candidates = self.candidates(None);
        if candidates.is_empty() {
            return Err(ServeError::FleetDown);
        }
        Ok(self.cfg.routing.admit(scene_key, &candidates))
    }

    /// Records a freshly admitted session's home, returning its fleet id.
    fn register(&mut self, shard: usize, local: SessionId, name: String) -> SessionId {
        self.homes.push(Some((shard, local)));
        self.names.push(name);
        self.homes.len() - 1
    }

    /// Rewrites a shard-local error's session id to the fleet-level `id` the
    /// caller used, so fleet errors never leak shard-local numbering.
    fn globalize(e: ServeError, id: SessionId) -> ServeError {
        match e {
            ServeError::UnknownSession { .. } => ServeError::UnknownSession { id },
            ServeError::NotStreaming { .. } => ServeError::NotStreaming { id },
            ServeError::StreamClosed { .. } => ServeError::StreamClosed { id },
            ServeError::SessionMigrated { .. } => ServeError::SessionMigrated { id },
            ServeError::SessionLost { .. } => ServeError::SessionLost { id },
            other => other,
        }
    }

    /// Submits a whole-trajectory session, routed by the fleet's
    /// [`ShardRoutingPolicy`]. Returns the **fleet-level** session id.
    /// Errors if admission rejects it or every shard is dead.
    pub fn submit(
        &mut self,
        spec: SessionSpec,
        scene: &'a AnalyticScene,
        model: &'a dyn NerfModel,
        traj: &'a Trajectory,
        intrinsics: Intrinsics,
    ) -> Result<SessionId, ServeError> {
        let shard = self.route_admission(&spec.scene_key)?;
        let name = spec.name.clone();
        let local = self.servers[shard].submit(spec, scene, model, traj, intrinsics)?;
        Ok(self.register(shard, local, name))
    }

    /// Submits a streaming session (poses arrive via
    /// [`push_pose`](Self::push_pose)), routed like [`submit`](Self::submit).
    pub fn submit_stream(
        &mut self,
        spec: SessionSpec,
        scene: &'a AnalyticScene,
        model: &'a dyn NerfModel,
        fps: f32,
        intrinsics: Intrinsics,
    ) -> Result<SessionId, ServeError> {
        let shard = self.route_admission(&spec.scene_key)?;
        let name = spec.name.clone();
        let local = self.servers[shard].submit_stream(spec, scene, model, fps, intrinsics)?;
        Ok(self.register(shard, local, name))
    }

    /// The fleet's **divert before shed** step: if the primary shard has no
    /// immediate headroom but an alive sibling does, route the admission to
    /// the least-loaded such sibling (ties to the lowest shard index) instead
    /// of queueing on the primary. Only engages with an armed
    /// [`OverloadControl`](crate::OverloadControl); otherwise the routing
    /// policy's choice stands unchanged.
    fn divert_target(
        &mut self,
        primary: usize,
        spec: &SessionSpec,
        intrinsics: Intrinsics,
        fps: f64,
    ) -> usize {
        if self.cfg.base.overload.is_none()
            || self.servers[primary].direct_fit(spec, intrinsics, fps)
        {
            return primary;
        }
        let mut best: Option<(f64, usize)> = None;
        for i in 0..self.cfg.shards {
            if i == primary || !self.alive[i] {
                continue;
            }
            if !self.servers[i].direct_fit(spec, intrinsics, fps) {
                continue;
            }
            let load = self.servers[i].admission().committed_load();
            if best.is_none_or(|(bl, _)| load < bl) {
                best = Some((load, i));
            }
        }
        let Some((_, dest)) = best else {
            return primary; // no headroom anywhere: queue/shed on the primary
        };
        self.diversions += 1;
        self.servers[primary].note_diversion();
        telemetry::instant(
            telemetry::Phase::OverloadDivert,
            dest as u64,
            primary as u64,
        );
        telemetry::add(telemetry::Counter::OverloadDiversions, 1);
        dest
    }

    /// Folds a shard-local [`SubmitOutcome`] into fleet-level numbering:
    /// immediate admissions register a fleet session id, queued submissions
    /// register a fleet ticket resolved by [`ticket`](Self::ticket).
    fn register_outcome(
        &mut self,
        shard: usize,
        outcome: SubmitOutcome,
        name: String,
    ) -> SubmitOutcome {
        match outcome {
            SubmitOutcome::Admitted(local) => {
                SubmitOutcome::Admitted(self.register(shard, local, name))
            }
            SubmitOutcome::Queued(local_ticket) => {
                self.ticket_homes.push((shard, local_ticket));
                self.ticket_names.push(name);
                self.ticket_states.push(TicketState::Pending);
                SubmitOutcome::Queued(self.ticket_homes.len() - 1)
            }
        }
    }

    /// Pulls shard-local ticket resolutions up to fleet level, registering a
    /// fleet session id for every freshly admitted queued submission. Must
    /// run after any pump and before any shard death is processed, so that
    /// every admitted session has a fleet id when failover drains its shard.
    fn reconcile_tickets(&mut self) {
        for t in 0..self.ticket_homes.len() {
            if self.ticket_states[t] != TicketState::Pending {
                continue;
            }
            let (shard, local_ticket) = self.ticket_homes[t];
            match self.servers[shard].ticket(local_ticket) {
                Some(TicketState::Admitted(local)) => {
                    let name = self.ticket_names[t].clone();
                    let global = self.register(shard, local, name);
                    self.ticket_states[t] = TicketState::Admitted(global);
                }
                Some(TicketState::Shed) => self.ticket_states[t] = TicketState::Shed,
                _ => {}
            }
        }
    }

    /// Time-aware submission through the overload controller, with the
    /// fleet's extra rung: **divert before shed**. The routing policy picks a
    /// primary shard; if it has no immediate headroom but a sibling does, the
    /// admission diverts there rather than queueing. Otherwise the primary's
    /// queue/shed/backpressure semantics apply
    /// (see [`FrameServer::submit_at`]). Returned ids and tickets are
    /// fleet-level.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_at(
        &mut self,
        now_s: f64,
        spec: SessionSpec,
        scene: &'a AnalyticScene,
        model: &'a dyn NerfModel,
        traj: &'a Trajectory,
        intrinsics: Intrinsics,
    ) -> Result<SubmitOutcome, ServeError> {
        let primary = self.route_admission(&spec.scene_key)?;
        let shard = self.divert_target(primary, &spec, intrinsics, traj.fps() as f64);
        let name = spec.name.clone();
        let outcome = self.servers[shard].submit_at(now_s, spec, scene, model, traj, intrinsics)?;
        let outcome = self.register_outcome(shard, outcome, name);
        // submit_at pumps the shard's queue internally; surface any queued
        // admissions it unlocked before a later shard death could drain them.
        self.reconcile_tickets();
        Ok(outcome)
    }

    /// Time-aware streaming submission with fleet divert-before-shed; see
    /// [`submit_at`](Self::submit_at). Buffer poses client-side until the
    /// ticket resolves to [`TicketState::Admitted`].
    pub fn submit_stream_at(
        &mut self,
        now_s: f64,
        spec: SessionSpec,
        scene: &'a AnalyticScene,
        model: &'a dyn NerfModel,
        fps: f32,
        intrinsics: Intrinsics,
    ) -> Result<SubmitOutcome, ServeError> {
        let primary = self.route_admission(&spec.scene_key)?;
        let shard = self.divert_target(primary, &spec, intrinsics, fps as f64);
        let name = spec.name.clone();
        let outcome =
            self.servers[shard].submit_stream_at(now_s, spec, scene, model, fps, intrinsics)?;
        let outcome = self.register_outcome(shard, outcome, name);
        self.reconcile_tickets();
        Ok(outcome)
    }

    /// Resolution state of a fleet-level queued-submission ticket; `None`
    /// for unknown tickets. `Admitted` carries the **fleet** session id,
    /// usable with [`push_pose`](Self::push_pose) /
    /// [`close_stream`](Self::close_stream) wherever failover later moves
    /// the session.
    pub fn ticket(&mut self, ticket: TicketId) -> Option<TicketState> {
        self.reconcile_tickets();
        self.ticket_states.get(ticket).copied()
    }

    /// Pending-admission queue depth summed across alive shards.
    pub fn queued(&self) -> usize {
        (0..self.cfg.shards)
            .filter(|&i| self.alive[i])
            .map(|i| self.servers[i].queued())
            .sum()
    }

    /// Resolves a fleet session id to its current home shard.
    fn home(&self, id: SessionId) -> Result<(usize, SessionId), ServeError> {
        match self.homes.get(id) {
            None => Err(ServeError::UnknownSession { id }),
            Some(None) => Err(ServeError::SessionLost { id }),
            Some(&Some(home)) => Ok(home),
        }
    }

    /// Feeds one pose to a streaming session, following it to wherever
    /// failover moved it. Errors with [`ServeError::SessionLost`] if its
    /// shard died with no survivor.
    pub fn push_pose(&mut self, id: SessionId, pose: Pose) -> Result<(), ServeError> {
        let (shard, local) = self.home(id)?;
        self.servers[shard]
            .push_pose(local, pose)
            .map_err(|e| Self::globalize(e, id))
    }

    /// Closes a streaming session's pose feed (idempotent), following the
    /// session like [`push_pose`](Self::push_pose).
    pub fn close_stream(&mut self, id: SessionId) -> Result<(), ServeError> {
        let (shard, local) = self.home(id)?;
        self.servers[shard]
            .close_stream(local)
            .map_err(|e| Self::globalize(e, id))
    }

    /// Earliest pre-dispatch batch readiness among alive shards, with the
    /// owning shard (ties to the lowest index). `None` when no alive shard
    /// can serve.
    fn earliest_ready(&self) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..self.cfg.shards {
            if !self.alive[i] {
                continue;
            }
            let t = self.servers[i].next_ready_s();
            if t.is_finite() && best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i));
            }
        }
        best
    }

    /// Processes every heartbeat due at or before `until_s`, in
    /// `(time, shard)` order. Only called with an armed fault plan.
    fn process_heartbeats(&mut self, plan: &FaultPlan, until_s: f64) {
        loop {
            // The earliest pending beat among alive shards. Equal-time beats
            // (the common case — one shared interval) process in ascending
            // shard order because the strict `<` keeps the first minimum.
            let mut next: Option<(f64, usize)> = None;
            for i in 0..self.cfg.shards {
                if !self.alive[i] {
                    continue;
                }
                let at = (self.hb_count[i] + 1) as f64 * self.cfg.heartbeat_interval_s;
                if at <= until_s && next.is_none_or(|(bt, _)| at < bt) {
                    next = Some((at, i));
                }
            }
            let Some((at, shard)) = next else { break };
            let k = self.hb_count[shard];
            self.hb_count[shard] += 1;
            if plan.fires(FaultKind::ShardBrownout, shard as u64, k, 0) {
                self.servers[shard].brownout(at + plan.brownout_s);
                self.shard_brownouts += 1;
                telemetry::instant(telemetry::Phase::ShardBrownout, shard as u64, k);
                telemetry::add(telemetry::Counter::ShardBrownouts, 1);
            }
            if plan.fires(FaultKind::ShardCrash, shard as u64, k, 0) {
                self.misses[shard] += 1;
                self.heartbeat_misses += 1;
                telemetry::instant(telemetry::Phase::HeartbeatMiss, shard as u64, k);
                telemetry::add(telemetry::Counter::HeartbeatMisses, 1);
                if self.misses[shard] >= self.cfg.miss_threshold {
                    self.kill_shard(shard, at);
                }
            } else {
                self.misses[shard] = 0;
            }
        }
    }

    /// Declares `shard` dead at `at_s` and fails its live sessions over to
    /// survivors (or marks them lost when there are none).
    fn kill_shard(&mut self, shard: usize, at_s: f64) {
        self.alive[shard] = false;
        self.shard_crashes += 1;
        // Queued (never-admitted) submissions die with the shard: shed them
        // so their tickets resolve and their demand stays accounted. Live
        // sessions migrate below instead.
        self.servers[shard].shed_queue();
        let has_survivor = self.alive.iter().any(|&a| a);
        // Fleet-session ids of this shard's residents, by local id.
        let residents: Vec<(SessionId, SessionId)> = self
            .homes
            .iter()
            .enumerate()
            .filter_map(|(global, home)| match home {
                Some((s, local)) if *s == shard => Some((*local, global)),
                _ => None,
            })
            .collect();
        if !has_survivor {
            // Nothing can adopt: leave the sessions resident (their served
            // frames still summarize in the dead shard's report) and charge
            // the unserved remainder against availability.
            let mut lost: Vec<SessionId> = Vec::new();
            for &(local, global) in &residents {
                let sess = self.servers[shard].session(local);
                if !sess.pipe.is_done() {
                    lost.push(global);
                    self.lost_frames += (sess.pipe.len() - sess.pipe.cursor()) as u64;
                }
            }
            self.lost_sessions += lost.len() as u64;
            telemetry::instant(
                telemetry::Phase::ShardCrash,
                shard as u64,
                lost.len() as u64,
            );
            telemetry::add(telemetry::Counter::ShardCrashes, 1);
            for global in lost {
                self.homes[global] = None;
            }
            return;
        }
        let taken = self.servers[shard].take_live_sessions();
        telemetry::instant(
            telemetry::Phase::ShardCrash,
            shard as u64,
            taken.len() as u64,
        );
        telemetry::add(telemetry::Counter::ShardCrashes, 1);
        for sess in taken {
            let global = residents
                .iter()
                .find(|&&(local, _)| local == sess.id)
                .map(|&(_, global)| global)
                .expect("every resident session has a fleet id");
            // Probe survivors' cache warmth at the session's next *unmade*
            // reference pose — the first render the destination will owe it.
            // A peek only: nothing is installed, so routing cannot change
            // pixels.
            let horizon = sess.spec.config.window.max(1);
            let probe = sess
                .pipe
                .upcoming_references(horizon)
                .first()
                .map(|&r| sess.pipe.reference_pose(r));
            let candidates = self.candidates(
                probe
                    .as_ref()
                    .map(|pose| (sess.cache_key.as_str(), sess.pipe.intrinsics(), pose)),
            );
            let dest = self.cfg.routing.failover(&sess.spec.scene_key, &candidates);
            debug_assert!(self.alive[dest], "routing must pick an alive candidate");
            let local = self.servers[dest].adopt_session(sess, at_s);
            self.homes[global] = Some((dest, local));
            telemetry::instant(
                telemetry::Phase::SessionMigrate,
                global as u64,
                shard as u64,
            );
            telemetry::add(telemetry::Counter::SessionMigrations, 1);
            self.migrations.push(MigrationRecord {
                session: global,
                name: self.names[global].clone(),
                from_shard: shard,
                to_shard: dest,
                at_s,
                resumed_s: -1.0,
                time_to_resume_s: -1.0,
            });
            self.migration_dest.push((dest, local));
        }
    }

    /// Drains every session fleet-wide and produces the [`FleetReport`].
    ///
    /// The loop interleaves shard scheduling rounds on one global simulated
    /// timeline: pick the shard whose next batch is earliest, process every
    /// heartbeat due by then (deaths migrate sessions *before* the round
    /// runs), then run that round on the earliest still-alive shard. With
    /// one shard and no shard faults this degenerates to exactly
    /// [`FrameServer::run`] — byte-for-byte.
    pub fn run(&mut self) -> FleetReport {
        let plan = self.cfg.base.faults;
        let armed = self.cfg.base.overload.is_some();
        loop {
            if let Some((t, _)) = self.earliest_ready() {
                if let Some(plan) = &plan {
                    self.process_heartbeats(plan, t);
                }
            }
            // Heartbeats may have killed the picked shard or shifted
            // readiness by adopting sessions elsewhere; re-pick among the
            // alive shards. Readiness only moves *forward* of the death time
            // processed above, so the re-pick is deterministic.
            let Some((t, _)) = self.earliest_ready() else {
                if !armed {
                    break;
                }
                // Every admitted batch has drained but submissions may still
                // wait in shard queues: advance to the earliest SLO admission
                // deadline fleet-wide and pump, which admits (possibly
                // browned out) or sheds the frontier entry.
                let frontier = (0..self.cfg.shards)
                    .filter(|&i| self.alive[i])
                    .filter_map(|i| self.servers[i].queue_frontier_s())
                    .min_by(f64::total_cmp);
                let Some(ft) = frontier else { break };
                let before = self.queued();
                for i in 0..self.cfg.shards {
                    if self.alive[i] {
                        self.servers[i].pump_overload(ft);
                    }
                }
                self.reconcile_tickets();
                if self.queued() >= before && self.earliest_ready().is_none() {
                    break; // defensive: no entry resolved and nothing to run
                }
                continue;
            };
            if armed {
                // Drained capacity admits queued work before the round runs,
                // in ascending shard order — deterministic either way.
                for i in 0..self.cfg.shards {
                    if self.alive[i] {
                        self.servers[i].pump_overload(t);
                    }
                }
                self.reconcile_tickets();
            }
            let Some((_, target)) = self.earliest_ready() else {
                continue;
            };
            self.servers[target].run_round();
        }

        for server in &mut self.servers {
            server.release_drained_loads();
        }
        self.finish_report()
    }

    fn finish_report(&self) -> FleetReport {
        let shards: Vec<ServiceReport> = self.servers.iter().map(|s| s.finish_report()).collect();
        let frames: usize = shards.iter().map(|r| r.frames).sum();
        let makespan_s = shards.iter().map(|r| r.makespan_s).fold(0.0, f64::max);
        let mut latencies: Vec<f64> = shards
            .iter()
            .flat_map(|r| r.records.iter().map(FrameRecord::latency_s))
            .collect();
        let deadline_misses: u64 = shards.iter().map(|r| r.deadline_misses).sum();
        let unrecovered: u64 = shards.iter().map(|r| r.faults.unrecovered).sum();
        let expected = frames as u64 + self.lost_frames;
        let mut migrations = self.migrations.clone();
        for (m, &(dest, local)) in migrations.iter_mut().zip(&self.migration_dest) {
            // The destination assigned a fresh local id at adoption, so every
            // record under it postdates the migration.
            let resumed = shards[dest]
                .records
                .iter()
                .filter(|r| r.session == local)
                .map(|r| r.completion_s)
                .fold(f64::INFINITY, f64::min);
            if resumed.is_finite() {
                m.resumed_s = resumed;
                m.time_to_resume_s = resumed - m.at_s;
            }
        }
        FleetReport {
            frames,
            makespan_s,
            throughput_fps: if makespan_s > 0.0 {
                frames as f64 / makespan_s
            } else {
                0.0
            },
            p50_latency_s: percentile(&mut latencies, 50.0),
            p99_latency_s: percentile(&mut latencies, 99.0),
            deadline_misses,
            deadline_miss_rate: if frames > 0 {
                deadline_misses as f64 / frames as f64
            } else {
                0.0
            },
            availability: if expected > 0 {
                1.0 - (unrecovered + self.lost_frames) as f64 / expected as f64
            } else {
                1.0
            },
            shard_crashes: self.shard_crashes,
            shard_brownouts: self.shard_brownouts,
            heartbeat_misses: self.heartbeat_misses,
            diversions: self.diversions,
            migrations,
            lost_sessions: self.lost_sessions,
            lost_frames: self.lost_frames,
            alive_shards: self.alive_shards(),
            shards,
        }
    }
}
