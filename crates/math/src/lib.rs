//! Linear algebra, camera models, image buffers and quality metrics used across
//! the Cicero neural-rendering workspace.
//!
//! This crate is the lowest layer of the reproduction of *Cicero: Addressing
//! Algorithmic and Architectural Bottlenecks in Neural Rendering by Radiance
//! Warping and Memory Optimizations* (ISCA 2024). It intentionally has no
//! third-party dependencies so every higher layer (scene generation, radiance
//! fields, memory simulators, hardware models) shares one small, well-tested
//! vocabulary of types:
//!
//! - [`Vec2`], [`Vec3`], [`Vec4`], [`Mat3`], [`Mat4`], [`Quat`] — `f32` linear algebra,
//! - [`Pose`] — rigid SE(3) camera poses with the extrapolation helpers needed by
//!   SPARW's off-trajectory reference frames (paper Eq. 5–6),
//! - [`Intrinsics`] / [`Camera`] — pinhole projection matching the paper's Eq. 1
//!   (back-projection) and Eq. 3 (perspective projection),
//! - [`Image`], [`RgbImage`], [`DepthMap`] — dense frame buffers,
//! - [`metrics`] — PSNR / SSIM / MSE used by every quality experiment.
//!
//! # Example
//!
//! ```
//! use cicero_math::{Camera, Intrinsics, Pose, Vec3};
//!
//! let cam = Camera::new(
//!     Intrinsics::from_fov(200, 200, 60.0_f32.to_radians()),
//!     Pose::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y),
//! );
//! let ray = cam.primary_ray(100.5, 100.5);
//! assert!(ray.dir.z < 0.0); // looking toward the origin
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod camera;
mod image;
mod mat;
pub mod metrics;
mod pose;
mod quat;
mod ray;
mod vec;

pub use aabb::Aabb;
pub use camera::{Camera, Intrinsics};
pub use image::{DepthMap, Image, RgbImage};
pub use mat::{Mat3, Mat4};
pub use pose::Pose;
pub use quat::Quat;
pub use ray::Ray;
pub use vec::{Vec2, Vec3, Vec4};

/// Linear interpolation between two scalars: `a` at `t == 0`, `b` at `t == 1`.
///
/// ```
/// assert_eq!(cicero_math::lerp(2.0, 4.0, 0.5), 3.0);
/// ```
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Clamp `x` to `[lo, hi]`.
///
/// ```
/// assert_eq!(cicero_math::clamp(5.0, 0.0, 1.0), 1.0);
/// ```
#[inline]
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    x.max(lo).min(hi)
}

/// Smooth Hermite interpolation between 0 and 1 over the edge interval.
///
/// Returns 0 for `x <= e0`, 1 for `x >= e1`, and `3t² − 2t³` in between. Used by
/// the procedural scenes to convert signed distances into soft volume densities.
#[inline]
pub fn smoothstep(e0: f32, e1: f32, x: f32) -> f32 {
    let t = clamp((x - e0) / (e1 - e0), 0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(1.0, 9.0, 0.0), 1.0);
        assert_eq!(lerp(1.0, 9.0, 1.0), 9.0);
    }

    #[test]
    fn smoothstep_is_monotone_and_clamped() {
        assert_eq!(smoothstep(0.0, 1.0, -1.0), 0.0);
        assert_eq!(smoothstep(0.0, 1.0, 2.0), 1.0);
        let mut prev = -1.0;
        for i in 0..=100 {
            let v = smoothstep(0.0, 1.0, i as f32 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }
}
