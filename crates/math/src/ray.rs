//! Rays and ray-segment utilities.

use crate::Vec3;

/// A half-line `r(t) = origin + t * dir`.
///
/// `dir` is kept unit length by construction through [`Ray::new`]; NeRF sample
/// positions along the ray are then `origin + t_i * dir` with `t_i` in world
/// units, which keeps the paper's ray-marching step size physically meaningful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin (camera center for primary rays).
    pub origin: Vec3,
    /// Unit-length direction.
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray, normalizing `dir`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dir` is (near) zero length.
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray {
            origin,
            dir: dir.normalized(),
        }
    }

    /// The point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert!((r.at(3.0) - Vec3::new(1.0, 3.0, 0.0)).length() < 1e-6);
    }

    #[test]
    fn direction_is_normalized() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(3.0, 4.0, 0.0));
        assert!((r.dir.length() - 1.0).abs() < 1e-6);
    }
}
