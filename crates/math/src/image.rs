//! Dense frame buffers: generic images, RGB frames and depth maps.

use crate::Vec3;
use std::path::Path;

/// A dense, row-major 2-D buffer of `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

/// An RGB radiance frame (linear color, `f32` per channel).
pub type RgbImage = Image<Vec3>;

/// A z-depth map; `f32::INFINITY` marks background/void pixels.
pub type DepthMap = Image<f32>;

impl<T: Clone> Image<T> {
    /// Creates an image filled with `fill`.
    pub fn new(width: usize, height: usize, fill: T) -> Self {
        Image {
            width,
            height,
            data: vec![fill; width * height],
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Image {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Immutable pixel access.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> &T {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        &self.data[y * self.width + x]
    }

    /// Mutable pixel access.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> &mut T {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        &mut self.data[y * self.width + x]
    }

    /// Raw row-major pixel slice.
    #[inline]
    pub fn pixels(&self) -> &[T] {
        &self.data
    }

    /// Overwrites every pixel with `value`, keeping the allocation — the
    /// reuse primitive behind zero-allocation frame loops (e.g. the warp
    /// output buffers of `cicero::sparw::warp_frame_into`).
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Raw mutable row-major pixel slice.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterates `(x, y, &pixel)` in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, p)| (i % w, i / w, p))
    }
}

impl RgbImage {
    /// A black image.
    pub fn black(width: usize, height: usize) -> Self {
        Image::new(width, height, Vec3::ZERO)
    }

    /// Bilinearly samples the image at continuous pixel coordinates, clamping
    /// to the border. Used by the DS-2 baseline's upsampling step.
    pub fn sample_bilinear(&self, u: f32, v: f32) -> Vec3 {
        let x = (u - 0.5).clamp(0.0, (self.width - 1) as f32);
        let y = (v - 0.5).clamp(0.0, (self.height - 1) as f32);
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let fx = x - x0 as f32;
        let fy = y - y0 as f32;
        let top = self.get(x0, y0).lerp(*self.get(x1, y0), fx);
        let bot = self.get(x0, y1).lerp(*self.get(x1, y1), fx);
        top.lerp(bot, fy)
    }

    /// Upsamples by an integer factor with bilinear interpolation (DS-2's
    /// reconstruction step).
    pub fn upsample_bilinear(&self, factor: usize) -> RgbImage {
        assert!(factor >= 1);
        let (w, h) = (self.width * factor, self.height * factor);
        Image::from_fn(w, h, |x, y| {
            let u = (x as f32 + 0.5) / factor as f32;
            let v = (y as f32 + 0.5) / factor as f32;
            self.sample_bilinear(u, v)
        })
    }

    /// Writes the image as a binary PPM file (values tone-clamped to [0,1]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_ppm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(self.data.len() * 3 + 64);
        buf.extend_from_slice(format!("P6\n{} {}\n255\n", self.width, self.height).as_bytes());
        for p in &self.data {
            for c in [p.x, p.y, p.z] {
                buf.push((c.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        std::fs::write(path, buf)
    }
}

impl DepthMap {
    /// A depth map with every pixel at infinity (all background).
    pub fn empty(width: usize, height: usize) -> Self {
        Image::new(width, height, f32::INFINITY)
    }

    /// Fraction of pixels with finite depth (i.e. covered by geometry).
    pub fn coverage(&self) -> f32 {
        let finite = self.data.iter().filter(|d| d.is_finite()).count();
        finite as f32 / self.data.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_row_major() {
        let img = Image::from_fn(3, 2, |x, y| (x, y));
        assert_eq!(*img.get(2, 0), (2, 0));
        assert_eq!(*img.get(0, 1), (0, 1));
        assert_eq!(img.pixels()[3], (0, 1));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let img = RgbImage::black(4, 4);
        let _ = img.get(4, 0);
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let mut img = RgbImage::black(2, 1);
        *img.get_mut(1, 0) = Vec3::ONE;
        let mid = img.sample_bilinear(1.0, 0.5);
        assert!((mid.x - 0.5).abs() < 1e-5);
    }

    #[test]
    fn upsample_doubles_dimensions() {
        let img = RgbImage::black(5, 7);
        let up = img.upsample_bilinear(2);
        assert_eq!(up.width(), 10);
        assert_eq!(up.height(), 14);
    }

    #[test]
    fn upsample_preserves_constant_images() {
        let img = Image::new(4, 4, Vec3::splat(0.25));
        let up = img.upsample_bilinear(2);
        for (_, _, p) in up.enumerate_pixels() {
            assert!((p.x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn depth_coverage_counts_finite() {
        let mut d = DepthMap::empty(2, 2);
        *d.get_mut(0, 0) = 1.0;
        *d.get_mut(1, 1) = 2.0;
        assert!((d.coverage() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ppm_write_roundtrips_header() {
        let img = RgbImage::black(3, 2);
        let dir = std::env::temp_dir().join("cicero_math_test.ppm");
        img.write_ppm(&dir).unwrap();
        let bytes = std::fs::read(&dir).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), b"P6\n3 2\n255\n".len() + 18);
        let _ = std::fs::remove_file(dir);
    }
}
