//! Unit quaternions for rotation interpolation and extrapolation.

use crate::{Mat3, Vec3};
use std::ops::Mul;

/// A unit quaternion representing a 3-D rotation.
///
/// SPARW extrapolates the pose of off-trajectory reference frames from the two
/// most recent target poses (paper Eq. 5–6). The paper specifies the position
/// extrapolation; we extend it to orientation by extrapolating in the
/// quaternion tangent space ([`Quat::slerp`] with `t > 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// Vector part, x.
    pub x: f32,
    /// Vector part, y.
    pub y: f32,
    /// Vector part, z.
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Rotation of `angle` radians about a (not necessarily unit) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Quat {
        let axis = axis.normalized();
        let (s, c) = (angle * 0.5).sin_cos();
        Quat {
            w: c,
            x: axis.x * s,
            y: axis.y * s,
            z: axis.z * s,
        }
    }

    /// Builds a quaternion from an orthonormal rotation matrix.
    pub fn from_mat3(m: &Mat3) -> Quat {
        // Shepperd's method: pick the numerically largest pivot.
        let (r0, r1, r2) = (m.row(0), m.row(1), m.row(2));
        let trace = r0.x + r1.y + r2.z;
        let q = if trace > 0.0 {
            let s = (trace + 1.0).sqrt() * 2.0;
            Quat {
                w: 0.25 * s,
                x: (r2.y - r1.z) / s,
                y: (r0.z - r2.x) / s,
                z: (r1.x - r0.y) / s,
            }
        } else if r0.x > r1.y && r0.x > r2.z {
            let s = (1.0 + r0.x - r1.y - r2.z).sqrt() * 2.0;
            Quat {
                w: (r2.y - r1.z) / s,
                x: 0.25 * s,
                y: (r0.y + r1.x) / s,
                z: (r0.z + r2.x) / s,
            }
        } else if r1.y > r2.z {
            let s = (1.0 + r1.y - r0.x - r2.z).sqrt() * 2.0;
            Quat {
                w: (r0.z - r2.x) / s,
                x: (r0.y + r1.x) / s,
                y: 0.25 * s,
                z: (r1.z + r2.y) / s,
            }
        } else {
            let s = (1.0 + r2.z - r0.x - r1.y).sqrt() * 2.0;
            Quat {
                w: (r1.x - r0.y) / s,
                x: (r0.z + r2.x) / s,
                y: (r1.z + r2.y) / s,
                z: 0.25 * s,
            }
        };
        q.normalized()
    }

    /// Converts to a rotation matrix.
    pub fn to_mat3(self) -> Mat3 {
        let Quat { w, x, y, z } = self;
        Mat3::from_rows(
            Vec3::new(
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ),
            Vec3::new(
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ),
            Vec3::new(
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ),
        )
    }

    /// Quaternion conjugate (inverse for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Returns the normalized quaternion.
    pub fn normalized(self) -> Quat {
        let n = (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt();
        debug_assert!(n > 1e-12, "normalizing a zero quaternion");
        Quat {
            w: self.w / n,
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        }
    }

    /// Dot product of quaternion components.
    #[inline]
    pub fn dot(self, o: Quat) -> f32 {
        self.w * o.w + self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Rotates a vector.
    #[inline]
    pub fn rotate(self, v: Vec3) -> Vec3 {
        self.to_mat3() * v
    }

    /// Spherical linear interpolation; `t` may lie outside `[0, 1]`, in which
    /// case the rotation is extrapolated along the same geodesic.
    ///
    /// SPARW uses `t > 1` to predict the orientation of a future reference
    /// frame from the two most recent target-frame orientations.
    pub fn slerp(self, mut other: Quat, t: f32) -> Quat {
        let mut cos = self.dot(other);
        // Take the short arc.
        if cos < 0.0 {
            other = Quat {
                w: -other.w,
                x: -other.x,
                y: -other.y,
                z: -other.z,
            };
            cos = -cos;
        }
        if cos > 0.9995 {
            // Nearly identical: fall back to (extrapolating) nlerp.
            return Quat {
                w: self.w + (other.w - self.w) * t,
                x: self.x + (other.x - self.x) * t,
                y: self.y + (other.y - self.y) * t,
                z: self.z + (other.z - self.z) * t,
            }
            .normalized();
        }
        let theta = cos.clamp(-1.0, 1.0).acos();
        let sin_theta = theta.sin();
        let a = ((1.0 - t) * theta).sin() / sin_theta;
        let b = (t * theta).sin() / sin_theta;
        Quat {
            w: a * self.w + b * other.w,
            x: a * self.x + b * other.x,
            y: a * self.y + b * other.y,
            z: a * self.z + b * other.z,
        }
        .normalized()
    }

    /// Rotation angle in radians between this orientation and `other`.
    pub fn angle_to(self, other: Quat) -> f32 {
        let d = self.dot(other).abs().clamp(0.0, 1.0);
        2.0 * d.acos()
    }
}

impl Mul for Quat {
    type Output = Quat;
    /// Hamilton product: `self * other` applies `other` first, then `self`.
    fn mul(self, o: Quat) -> Quat {
        Quat {
            w: self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            x: self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            y: self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            z: self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn axis_angle_rotates_correctly() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        let v = q.rotate(Vec3::X);
        assert!((v - Vec3::Y).length() < 1e-6);
    }

    #[test]
    fn mat3_roundtrip() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.234);
        let q2 = Quat::from_mat3(&q.to_mat3());
        // q and -q encode the same rotation.
        assert!(q.dot(q2).abs() > 1.0 - 1e-5);
    }

    #[test]
    fn conjugate_is_inverse() {
        let q = Quat::from_axis_angle(Vec3::Y, 0.8);
        let v = Vec3::new(0.3, -0.2, 0.9);
        let roundtrip = q.conjugate().rotate(q.rotate(v));
        assert!((roundtrip - v).length() < 1e-6);
    }

    #[test]
    fn slerp_interpolates_angle() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, 1.0);
        let mid = a.slerp(b, 0.5);
        assert!((mid.angle_to(a) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn slerp_extrapolates_past_one() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, 0.4);
        let extra = a.slerp(b, 2.0);
        let expected = Quat::from_axis_angle(Vec3::Z, 0.8);
        assert!(extra.angle_to(expected) < 1e-4);
    }

    #[test]
    fn hamilton_product_composes() {
        let a = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        let b = Quat::from_axis_angle(Vec3::X, PI);
        let v = Vec3::new(0.0, 1.0, 0.0);
        let composed = (a * b).rotate(v);
        let sequential = a.rotate(b.rotate(v));
        assert!((composed - sequential).length() < 1e-5);
    }
}
