//! 3×3 and 4×4 column-major matrices.

use crate::{Vec3, Vec4};
use std::ops::Mul;

/// A 3×3 column-major matrix (rotations, intrinsics `K`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Columns of the matrix.
    pub cols: [Vec3; 3],
}

/// A 4×4 column-major matrix (homogeneous rigid transforms, projections).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Columns of the matrix.
    pub cols: [Vec4; 4],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        cols: [
            Vec3 {
                x: 1.0,
                y: 0.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 1.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        ],
    };

    /// Builds a matrix from three columns.
    #[inline]
    pub const fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 { cols: [c0, c1, c2] }
    }

    /// Builds a matrix from rows (convenient for writing literals).
    #[inline]
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Mat3::from_cols(
            Vec3::new(r0.x, r1.x, r2.x),
            Vec3::new(r0.y, r1.y, r2.y),
            Vec3::new(r0.z, r1.z, r2.z),
        )
    }

    /// A diagonal matrix with the given diagonal entries.
    #[inline]
    pub fn from_diagonal(d: Vec3) -> Self {
        Mat3::from_cols(Vec3::X * d.x, Vec3::Y * d.y, Vec3::Z * d.z)
    }

    /// Matrix transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_rows(self.cols[0], self.cols[1], self.cols[2])
    }

    /// Determinant.
    #[inline]
    pub fn determinant(&self) -> f32 {
        self.cols[0].dot(self.cols[1].cross(self.cols[2]))
    }

    /// Matrix inverse.
    ///
    /// Returns `None` when the matrix is singular (|det| < 1e-12).
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let c0 = self.cols[1].cross(self.cols[2]) * inv_det;
        let c1 = self.cols[2].cross(self.cols[0]) * inv_det;
        let c2 = self.cols[0].cross(self.cols[1]) * inv_det;
        // Rows of the inverse are the scaled cross products; transpose back to columns.
        Some(Mat3::from_rows(c0, c1, c2))
    }

    /// Rotation of `angle` radians about the X axis.
    pub fn rotation_x(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, c, -s),
            Vec3::new(0.0, s, c),
        )
    }

    /// Rotation of `angle` radians about the Y axis.
    pub fn rotation_y(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(
            Vec3::new(c, 0.0, s),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(-s, 0.0, c),
        )
    }

    /// Rotation of `angle` radians about the Z axis.
    pub fn rotation_z(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows(
            Vec3::new(c, -s, 0.0),
            Vec3::new(s, c, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        )
    }

    /// Row `i` of the matrix.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.cols[0][i], self.cols[1][i], self.cols[2][i])
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    #[inline]
    fn mul(self, o: Mat3) -> Mat3 {
        Mat3 {
            cols: [self * o.cols[0], self * o.cols[1], self * o.cols[2]],
        }
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            Vec4 {
                x: 1.0,
                y: 0.0,
                z: 0.0,
                w: 0.0,
            },
            Vec4 {
                x: 0.0,
                y: 1.0,
                z: 0.0,
                w: 0.0,
            },
            Vec4 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
                w: 0.0,
            },
            Vec4 {
                x: 0.0,
                y: 0.0,
                z: 0.0,
                w: 1.0,
            },
        ],
    };

    /// Builds a matrix from four columns.
    #[inline]
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Mat4 {
            cols: [c0, c1, c2, c3],
        }
    }

    /// Builds a rigid transform from a rotation and a translation.
    #[inline]
    pub fn from_rotation_translation(r: Mat3, t: Vec3) -> Self {
        Mat4::from_cols(
            r.cols[0].extend(0.0),
            r.cols[1].extend(0.0),
            r.cols[2].extend(0.0),
            t.extend(1.0),
        )
    }

    /// The upper-left 3×3 block.
    #[inline]
    pub fn rotation_part(&self) -> Mat3 {
        Mat3::from_cols(
            self.cols[0].truncate(),
            self.cols[1].truncate(),
            self.cols[2].truncate(),
        )
    }

    /// The translation column.
    #[inline]
    pub fn translation_part(&self) -> Vec3 {
        self.cols[3].truncate()
    }

    /// Transforms a point (applies rotation and translation).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        (self.rotation_part() * p) + self.translation_part()
    }

    /// Transforms a direction (rotation only).
    #[inline]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.rotation_part() * d
    }

    /// Inverse of a rigid transform (rotation must be orthonormal).
    ///
    /// Much cheaper than a general 4×4 inverse and exact for camera poses.
    pub fn rigid_inverse(&self) -> Mat4 {
        let rt = self.rotation_part().transpose();
        let t = self.translation_part();
        Mat4::from_rotation_translation(rt, -(rt * t))
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;
    #[inline]
    fn mul(self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    #[inline]
    fn mul(self, o: Mat4) -> Mat4 {
        Mat4 {
            cols: [
                self * o.cols[0],
                self * o.cols[1],
                self * o.cols[2],
                self * o.cols[3],
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: Vec3, b: Vec3, eps: f32) {
        assert!((a - b).length() < eps, "{a} != {b}");
    }

    #[test]
    fn identity_is_neutral() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
        assert_eq!(Mat4::IDENTITY.transform_point(v), v);
    }

    #[test]
    fn rotation_preserves_length() {
        let r = Mat3::rotation_y(0.7) * Mat3::rotation_x(-1.2) * Mat3::rotation_z(2.5);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(((r * v).length() - v.length()).abs() < 1e-5);
        assert!((r.determinant() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Mat3::from_rows(
            Vec3::new(2.0, 1.0, 0.5),
            Vec3::new(-1.0, 3.0, 0.0),
            Vec3::new(0.0, 0.25, 1.5),
        );
        let inv = m.inverse().expect("invertible");
        let prod = m * inv;
        for i in 0..3 {
            assert_vec_close(prod.cols[i], Mat3::IDENTITY.cols[i], 1e-5);
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::from_cols(Vec3::X, Vec3::X, Vec3::Y);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn rigid_inverse_undoes_transform() {
        let m = Mat4::from_rotation_translation(Mat3::rotation_z(1.0), Vec3::new(3.0, -1.0, 2.0));
        let p = Vec3::new(0.5, 0.25, -4.0);
        let q = m.transform_point(p);
        assert_vec_close(m.rigid_inverse().transform_point(q), p, 1e-5);
    }

    #[test]
    fn matrix_vector_matches_rows() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        );
        let v = Vec3::new(1.0, 1.0, 1.0);
        assert_vec_close(m * v, Vec3::new(6.0, 15.0, 24.0), 1e-6);
        assert_eq!(m.row(0), Vec3::new(1.0, 2.0, 3.0));
    }
}
