//! Small fixed-size `f32` vectors.

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 2-component `f32` vector (pixel coordinates, plane features).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// A 3-component `f32` vector (positions, directions, RGB radiance).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-component `f32` vector (homogeneous coordinates, RGBA).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

macro_rules! impl_binops {
    ($ty:ident, $($f:ident),+) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, o: $ty) -> $ty { $ty { $($f: self.$f + o.$f),+ } }
        }
        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, o: $ty) -> $ty { $ty { $($f: self.$f - o.$f),+ } }
        }
        impl Mul for $ty {
            type Output = $ty;
            /// Component-wise (Hadamard) product.
            #[inline]
            fn mul(self, o: $ty) -> $ty { $ty { $($f: self.$f * o.$f),+ } }
        }
        impl Mul<f32> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, s: f32) -> $ty { $ty { $($f: self.$f * s),+ } }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            #[inline]
            fn mul(self, v: $ty) -> $ty { v * self }
        }
        impl Div<f32> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, s: f32) -> $ty { $ty { $($f: self.$f / s),+ } }
        }
        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty { $ty { $($f: -self.$f),+ } }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, o: $ty) { $(self.$f += o.$f;)+ }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, o: $ty) { $(self.$f -= o.$f;)+ }
        }
        impl MulAssign<f32> for $ty {
            #[inline]
            fn mul_assign(&mut self, s: f32) { $(self.$f *= s;)+ }
        }
        impl DivAssign<f32> for $ty {
            #[inline]
            fn div_assign(&mut self, s: f32) { $(self.$f /= s;)+ }
        }
        impl $ty {
            /// Dot product.
            #[inline]
            pub fn dot(self, o: $ty) -> f32 {
                let mut acc = 0.0;
                $(acc += self.$f * o.$f;)+
                acc
            }
            /// Euclidean length.
            #[inline]
            pub fn length(self) -> f32 { self.dot(self).sqrt() }
            /// Squared Euclidean length (avoids the square root).
            #[inline]
            pub fn length_squared(self) -> f32 { self.dot(self) }
            /// Returns the unit-length vector pointing the same way.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the vector is (near) zero length.
            #[inline]
            pub fn normalized(self) -> $ty {
                let len = self.length();
                debug_assert!(len > 1e-12, "normalizing a zero-length vector");
                self / len
            }
            /// Component-wise minimum.
            #[inline]
            pub fn min(self, o: $ty) -> $ty { $ty { $($f: self.$f.min(o.$f)),+ } }
            /// Component-wise maximum.
            #[inline]
            pub fn max(self, o: $ty) -> $ty { $ty { $($f: self.$f.max(o.$f)),+ } }
            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> $ty { $ty { $($f: self.$f.abs()),+ } }
            /// Linear interpolation: `self` at `t == 0`, `o` at `t == 1`.
            #[inline]
            pub fn lerp(self, o: $ty, t: f32) -> $ty { self + (o - self) * t }
            /// Largest component value.
            #[inline]
            pub fn max_element(self) -> f32 {
                let mut m = f32::NEG_INFINITY;
                $(m = m.max(self.$f);)+
                m
            }
            /// Smallest component value.
            #[inline]
            pub fn min_element(self) -> f32 {
                let mut m = f32::INFINITY;
                $(m = m.min(self.$f);)+
                m
            }
            /// `true` when every component is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                let mut ok = true;
                $(ok &= self.$f.is_finite();)+
                ok
            }
        }
    };
}

impl_binops!(Vec2, x, y);
impl_binops!(Vec3, x, y, z);
impl_binops!(Vec4, x, y, z, w);

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec2 { x: v, y: v }
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// All ones.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit X axis.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y axis.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z axis.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Extends to homogeneous coordinates with the given `w`.
    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// Component by index: `0 → x`, `1 → y`, `2 → z`; `None` out of range.
    ///
    /// The safe counterpart of `v[i]` for computed indices.
    #[inline]
    pub const fn get(self, i: usize) -> Option<f32> {
        match i {
            0 => Some(self.x),
            1 => Some(self.y),
            2 => Some(self.z),
            _ => None,
        }
    }

    /// Mutable component by index; `None` out of range.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> Option<&mut f32> {
        match i {
            0 => Some(&mut self.x),
            1 => Some(&mut self.y),
            2 => Some(&mut self.z),
            _ => None,
        }
    }

    /// Angle in radians between `self` and `o` (both need not be normalized).
    ///
    /// This is the quantity θ of the paper's Fig. 8: the angle subtended at a
    /// scene point by the reference-camera ray and the target-camera ray, used
    /// by the SPARW warping heuristic.
    #[inline]
    pub fn angle_between(self, o: Vec3) -> f32 {
        let denom = (self.length_squared() * o.length_squared()).sqrt();
        if denom <= 1e-20 {
            return 0.0;
        }
        let c = (self.dot(o) / denom).clamp(-1.0, 1.0);
        c.acos()
    }
}

impl Vec4 {
    /// The zero vector.
    pub const ZERO: Vec4 = Vec4 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
        w: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Vec4 { x, y, z, w }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec4 {
            x: v,
            y: v,
            z: v,
            w: v,
        }
    }

    /// Drops the `w` component.
    #[inline]
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective division: `(x, y, z) / w`.
    #[inline]
    pub fn project(self) -> Vec3 {
        self.truncate() / self.w
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    /// `v[i]` for a trusted index. Hot warp/gather loops only ever index
    /// with `i < 3`; prefer [`Vec3::get`] when the index is computed.
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        debug_assert!(i < 3, "Vec3 index {i} out of range");
        match i {
            0 => &self.x,
            1 => &self.y,
            _ => &self.z,
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        debug_assert!(i < 3, "Vec3 index {i} out of range");
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            _ => &mut self.z,
        }
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
    }

    #[test]
    fn normalize_gives_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        let theta = Vec3::X.angle_between(Vec3::Y);
        assert!((theta - std::f32::consts::FRAC_PI_2).abs() < 1e-6);
        // Parallel vectors subtend zero angle regardless of magnitude.
        assert!(Vec3::X.angle_between(Vec3::X * 10.0) < 1e-6);
    }

    #[test]
    fn homogeneous_project() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn index_access() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        v[1] = 7.0;
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 7.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn index_out_of_range_panics_in_debug() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn get_is_total() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.get(0), Some(1.0));
        assert_eq!(v.get(1), Some(2.0));
        assert_eq!(v.get(2), Some(3.0));
        assert_eq!(v.get(3), None);
        assert_eq!(v.get(usize::MAX), None);
    }

    #[test]
    fn get_mut_mutates_components() {
        let mut v = Vec3::ZERO;
        *v.get_mut(1).unwrap() = 5.0;
        assert_eq!(v, Vec3::new(0.0, 5.0, 0.0));
        assert!(v.get_mut(3).is_none());
    }

    #[test]
    fn min_max_elements() {
        let v = Vec3::new(-1.0, 5.0, 2.0);
        assert_eq!(v.max_element(), 5.0);
        assert_eq!(v.min_element(), -1.0);
        assert_eq!(v.abs().min_element(), 1.0);
    }
}
