//! Axis-aligned bounding boxes.

use crate::{Ray, Vec3};

/// An axis-aligned bounding box, used for scene bounds and voxel-grid extents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any component of `min` exceeds `max`.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z);
        Aabb { min, max }
    }

    /// A cube centered at the origin with the given half extent.
    #[inline]
    pub fn centered_cube(half: f32) -> Self {
        Aabb::new(Vec3::splat(-half), Vec3::splat(half))
    }

    /// Box dimensions.
    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// `true` if the point lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.y >= self.min.y
            && p.z >= self.min.z
            && p.x <= self.max.x
            && p.y <= self.max.y
            && p.z <= self.max.z
    }

    /// Maps a point to normalized `[0,1]³` coordinates within the box.
    #[inline]
    pub fn normalize(&self, p: Vec3) -> Vec3 {
        let s = self.size();
        Vec3::new(
            (p.x - self.min.x) / s.x,
            (p.y - self.min.y) / s.y,
            (p.z - self.min.z) / s.z,
        )
    }

    /// Slab-test intersection of a ray with the box.
    ///
    /// Returns the parametric entry/exit interval `(t_near, t_far)` clipped to
    /// `t >= 0`, or `None` when the ray misses. This interval bounds NeRF ray
    /// marching so no samples are wasted outside the scene volume.
    pub fn intersect(&self, ray: &Ray) -> Option<(f32, f32)> {
        let mut t0 = 0.0_f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let inv = 1.0 / ray.dir[axis];
            let mut near = (self.min[axis] - ray.origin[axis]) * inv;
            let mut far = (self.max[axis] - ray.origin[axis]) * inv;
            if inv < 0.0 {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_normalize() {
        let b = Aabb::centered_cube(1.0);
        assert!(b.contains(Vec3::ZERO));
        assert!(!b.contains(Vec3::new(1.5, 0.0, 0.0)));
        let n = b.normalize(Vec3::new(0.0, 1.0, -1.0));
        assert!((n - Vec3::new(0.5, 1.0, 0.0)).length() < 1e-6);
    }

    #[test]
    fn ray_through_center_hits() {
        let b = Aabb::centered_cube(1.0);
        let r = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, -1.0));
        let (t0, t1) = b.intersect(&r).expect("hit");
        assert!((t0 - 4.0).abs() < 1e-5);
        assert!((t1 - 6.0).abs() < 1e-5);
    }

    #[test]
    fn ray_missing_returns_none() {
        let b = Aabb::centered_cube(1.0);
        let r = Ray::new(Vec3::new(0.0, 5.0, 5.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(b.intersect(&r).is_none());
    }

    #[test]
    fn ray_starting_inside_clips_to_zero() {
        let b = Aabb::centered_cube(2.0);
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let (t0, t1) = b.intersect(&r).expect("hit");
        assert_eq!(t0, 0.0);
        assert!((t1 - 2.0).abs() < 1e-5);
    }
}
