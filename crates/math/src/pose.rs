//! Rigid camera poses (SE(3)) and the pose extrapolation used by SPARW.

use crate::{Mat3, Mat4, Quat, Vec3};

/// A rigid camera-to-world transform.
///
/// `position` is the camera center expressed in world coordinates and
/// `rotation` maps camera-space directions to world space. The camera space
/// follows the computer-vision convention used by the paper's Eq. 1 and Eq. 3:
/// **+Z looks forward, +X right, +Y down**, so the depth of a visible point is
/// simply its camera-space `z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Camera center in world coordinates.
    pub position: Vec3,
    /// Camera-to-world rotation.
    pub rotation: Quat,
}

impl Default for Pose {
    fn default() -> Self {
        Pose {
            position: Vec3::ZERO,
            rotation: Quat::IDENTITY,
        }
    }
}

impl Pose {
    /// The identity pose (camera at origin looking down world +Z).
    pub const IDENTITY: Pose = Pose {
        position: Vec3::ZERO,
        rotation: Quat::IDENTITY,
    };

    /// Creates a pose from a position and a rotation.
    #[inline]
    pub fn new(position: Vec3, rotation: Quat) -> Self {
        Pose { position, rotation }
    }

    /// Builds a pose with the camera at `eye` looking at `target`.
    ///
    /// `up` is the world-space up hint (usually `Vec3::Y`). Because camera
    /// space is +Y-down, the image "up" maps to `-Y` in camera coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `eye == target` or `up` is parallel to the
    /// viewing direction.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Pose {
        let forward = (target - eye).normalized(); // camera +Z
        let up_orth = up - forward * up.dot(forward);
        debug_assert!(
            up_orth.length() > 1e-6,
            "up is parallel to the view direction"
        );
        let down = -up_orth.normalized(); // camera +Y (image rows grow downward)
        let right = down.cross(forward); // camera +X; x = y × z keeps det = +1
        let rot = Mat3::from_cols(right, down, forward);
        Pose::new(eye, Quat::from_mat3(&rot))
    }

    /// World-space forward direction (camera +Z).
    #[inline]
    pub fn forward(&self) -> Vec3 {
        self.rotation.rotate(Vec3::Z)
    }

    /// Transforms a point from camera space to world space.
    #[inline]
    pub fn to_world(&self, p_cam: Vec3) -> Vec3 {
        self.rotation.rotate(p_cam) + self.position
    }

    /// Transforms a point from world space to camera space.
    #[inline]
    pub fn to_camera(&self, p_world: Vec3) -> Vec3 {
        self.rotation.conjugate().rotate(p_world - self.position)
    }

    /// Rotates a camera-space direction into world space.
    #[inline]
    pub fn dir_to_world(&self, d_cam: Vec3) -> Vec3 {
        self.rotation.rotate(d_cam)
    }

    /// The homogeneous camera-to-world matrix.
    pub fn to_mat4(&self) -> Mat4 {
        Mat4::from_rotation_translation(self.rotation.to_mat3(), self.position)
    }

    /// The relative transform taking points in `self`'s camera space to
    /// `target`'s camera space — the paper's `T_ref→tgt` of Eq. 2.
    pub fn transform_to(&self, target: &Pose) -> Mat4 {
        target.to_mat4().rigid_inverse() * self.to_mat4()
    }

    /// Extrapolates a future pose from two past poses (paper Eq. 5–6).
    ///
    /// With `prev` rendered at time step `k-1` and `cur` at step `k`, returns
    /// the pose predicted `steps_ahead` frame intervals after `cur`, assuming
    /// constant linear and angular velocity. SPARW uses
    /// `steps_ahead = N / 2` so the reference frame sits roughly at the center
    /// of its warping window of `N` target frames.
    pub fn extrapolate(prev: &Pose, cur: &Pose, steps_ahead: f32) -> Pose {
        let velocity = cur.position - prev.position; // Eq. 5 with Δt = 1 frame
        Pose {
            position: cur.position + velocity * steps_ahead, // Eq. 6
            rotation: prev.rotation.slerp(cur.rotation, 1.0 + steps_ahead),
        }
    }

    /// Translation distance plus a rotation-angle proxy to another pose.
    ///
    /// Used by tests and heuristics to assert "nearby camera poses".
    pub fn distance_to(&self, other: &Pose) -> f32 {
        (self.position - other.position).length() + self.rotation.angle_to(other.rotation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn look_at_points_forward() {
        let pose = Pose::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y);
        let fwd = pose.forward();
        assert!((fwd - Vec3::Z).length() < 1e-5, "forward was {fwd}");
    }

    #[test]
    fn look_at_basis_is_right_handed_and_upright() {
        // A person standing at -Z facing +Z with their head along +Y has
        // their right hand pointing toward -X; image rows grow toward -Y.
        let pose = Pose::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y);
        let right = pose.rotation.rotate(Vec3::X);
        let down = pose.rotation.rotate(Vec3::Y);
        assert!((right + Vec3::X).length() < 1e-5, "right was {right}");
        assert!((down + Vec3::Y).length() < 1e-5, "down was {down}");
        // Right-handedness: x × y = z.
        let fwd = pose.rotation.rotate(Vec3::Z);
        assert!((right.cross(down) - fwd).length() < 1e-5);
    }

    #[test]
    fn world_camera_roundtrip() {
        let pose = Pose::look_at(Vec3::new(3.0, 2.0, -4.0), Vec3::new(0.5, 0.0, 0.0), Vec3::Y);
        let p = Vec3::new(0.1, -0.7, 1.3);
        let roundtrip = pose.to_world(pose.to_camera(p));
        assert!((roundtrip - p).length() < 1e-4);
    }

    #[test]
    fn visible_point_has_positive_depth() {
        let pose = Pose::look_at(Vec3::new(0.0, 1.0, -6.0), Vec3::ZERO, Vec3::Y);
        let cam = pose.to_camera(Vec3::ZERO);
        assert!(
            cam.z > 0.0,
            "target should be in front of the camera, got {cam}"
        );
    }

    #[test]
    fn transform_to_matches_manual_composition() {
        let a = Pose::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y);
        let b = Pose::look_at(Vec3::new(1.0, 0.5, -5.0), Vec3::ZERO, Vec3::Y);
        let t = a.transform_to(&b);
        let p_world = Vec3::new(0.2, -0.3, 0.4);
        let via_t = t.transform_point(a.to_camera(p_world));
        let direct = b.to_camera(p_world);
        assert!((via_t - direct).length() < 1e-4);
    }

    #[test]
    fn extrapolate_continues_linear_motion() {
        let p0 = Pose::new(Vec3::ZERO, Quat::IDENTITY);
        let p1 = Pose::new(Vec3::new(0.1, 0.0, 0.0), Quat::IDENTITY);
        let future = Pose::extrapolate(&p0, &p1, 8.0);
        assert!((future.position - Vec3::new(0.9, 0.0, 0.0)).length() < 1e-5);
    }

    #[test]
    fn extrapolate_continues_rotation() {
        let p0 = Pose::new(Vec3::ZERO, Quat::IDENTITY);
        let p1 = Pose::new(Vec3::ZERO, Quat::from_axis_angle(Vec3::Y, 0.05));
        let future = Pose::extrapolate(&p0, &p1, 3.0);
        let expected = Quat::from_axis_angle(Vec3::Y, 0.2);
        assert!(future.rotation.angle_to(expected) < 1e-4);
    }
}
