//! Image quality metrics: MSE, PSNR and SSIM.
//!
//! Every quality experiment in the paper (Fig. 16, 22, 25, 26) reports Peak
//! Signal-to-Noise Ratio; SSIM is provided as a secondary check. All metrics
//! operate on linear-RGB [`RgbImage`]s clamped to `[0, 1]`.

use crate::{RgbImage, Vec3};

/// Mean squared error between two images over all channels.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn mse(a: &RgbImage, b: &RgbImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "mse requires equal image dimensions"
    );
    let mut acc = 0.0_f64;
    for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
        let d = clamp01(*pa) - clamp01(*pb);
        acc += (d.x as f64).powi(2) + (d.y as f64).powi(2) + (d.z as f64).powi(2);
    }
    acc / (a.pixel_count() as f64 * 3.0)
}

/// Peak signal-to-noise ratio in dB (peak = 1.0).
///
/// Identical images return `f64::INFINITY`.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn psnr(a: &RgbImage, b: &RgbImage) -> f64 {
    let e = mse(a, b);
    if e <= 0.0 {
        f64::INFINITY
    } else {
        -10.0 * e.log10()
    }
}

/// Mean of per-frame PSNRs taken over MSE (the paper's per-scene averaging):
/// each PSNR is converted back to an MSE, the MSEs are averaged, and the mean
/// is converted back to dB. Returns `NaN` for an empty slice; infinite PSNRs
/// (identical frames) contribute zero MSE.
pub fn mean_psnr_db(psnrs: &[f64]) -> f64 {
    if psnrs.is_empty() {
        return f64::NAN;
    }
    let mse: f64 = psnrs.iter().map(|p| 10f64.powf(-p / 10.0)).sum::<f64>() / psnrs.len() as f64;
    -10.0 * mse.log10()
}

/// Structural similarity (mean SSIM over 8×8 windows, luma only).
///
/// Returns a value in `[-1, 1]`; 1.0 means identical.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn ssim(a: &RgbImage, b: &RgbImage) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()));
    const WIN: usize = 8;
    const C1: f64 = 0.01 * 0.01;
    const C2: f64 = 0.03 * 0.03;
    let luma = |p: Vec3| -> f64 {
        let p = clamp01(p);
        0.2126 * p.x as f64 + 0.7152 * p.y as f64 + 0.0722 * p.z as f64
    };
    let mut total = 0.0;
    let mut windows = 0usize;
    let (w, h) = (a.width(), a.height());
    for wy in (0..h).step_by(WIN) {
        for wx in (0..w).step_by(WIN) {
            let (mut ma, mut mb, mut va, mut vb, mut cov, mut n) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
            for y in wy..(wy + WIN).min(h) {
                for x in wx..(wx + WIN).min(w) {
                    let la = luma(*a.get(x, y));
                    let lb = luma(*b.get(x, y));
                    ma += la;
                    mb += lb;
                    va += la * la;
                    vb += lb * lb;
                    cov += la * lb;
                    n += 1.0;
                }
            }
            ma /= n;
            mb /= n;
            va = (va / n - ma * ma).max(0.0);
            vb = (vb / n - mb * mb).max(0.0);
            cov = cov / n - ma * mb;
            let s = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            total += s;
            windows += 1;
        }
    }
    total / windows as f64
}

fn clamp01(p: Vec3) -> Vec3 {
    Vec3::new(
        p.x.clamp(0.0, 1.0),
        p.y.clamp(0.0, 1.0),
        p.z.clamp(0.0, 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Image;

    fn gradient(w: usize, h: usize) -> RgbImage {
        Image::from_fn(w, h, |x, y| {
            Vec3::new(x as f32 / w as f32, y as f32 / h as f32, 0.5)
        })
    }

    #[test]
    fn identical_images_are_perfect() {
        let img = gradient(16, 16);
        assert_eq!(psnr(&img, &img), f64::INFINITY);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-9);
        assert_eq!(mse(&img, &img), 0.0);
    }

    #[test]
    fn known_mse_gives_known_psnr() {
        let a = Image::new(8, 8, Vec3::ZERO);
        let b = Image::new(8, 8, Vec3::splat(0.1));
        // MSE = 0.01, PSNR = 20 dB.
        assert!((mse(&a, &b) - 0.01).abs() < 1e-9);
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn noisier_image_scores_lower() {
        let a = gradient(32, 32);
        let mut b = a.clone();
        let mut c = a.clone();
        for (i, p) in b.pixels_mut().iter_mut().enumerate() {
            p.x += if i % 2 == 0 { 0.02 } else { -0.02 };
        }
        for (i, p) in c.pixels_mut().iter_mut().enumerate() {
            p.x += if i % 2 == 0 { 0.2 } else { -0.2 };
        }
        assert!(psnr(&a, &b) > psnr(&a, &c));
        assert!(ssim(&a, &b) > ssim(&a, &c));
    }

    #[test]
    fn values_outside_unit_range_are_clamped() {
        let a = Image::new(4, 4, Vec3::splat(2.0)); // clamps to 1.0
        let b = Image::new(4, 4, Vec3::ONE);
        assert_eq!(psnr(&a, &b), f64::INFINITY);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = RgbImage::black(4, 4);
        let b = RgbImage::black(5, 4);
        let _ = mse(&a, &b);
    }
}
