//! Pinhole cameras: the paper's Eq. 1 (back-projection) and Eq. 3 (projection).

use crate::{Pose, Ray, Vec3};

/// Pinhole intrinsic parameters: focal length `f` and principal point
/// `(cx, cy)`, in pixels, plus the image resolution.
///
/// These are exactly the quantities appearing in the paper's point-cloud
/// conversion (Eq. 1) and perspective re-projection (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intrinsics {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Focal length in pixels (square pixels: fx == fy == f).
    pub focal: f32,
    /// Principal point x (pixels).
    pub cx: f32,
    /// Principal point y (pixels).
    pub cy: f32,
}

impl Intrinsics {
    /// Creates intrinsics with the principal point at the image center.
    pub fn new(width: usize, height: usize, focal: f32) -> Self {
        Intrinsics {
            width,
            height,
            focal,
            cx: width as f32 * 0.5,
            cy: height as f32 * 0.5,
        }
    }

    /// Creates intrinsics from a horizontal field of view (radians).
    ///
    /// ```
    /// let k = cicero_math::Intrinsics::from_fov(800, 800, std::f32::consts::FRAC_PI_2);
    /// assert!((k.focal - 400.0).abs() < 1e-3);
    /// ```
    pub fn from_fov(width: usize, height: usize, fov_x: f32) -> Self {
        let focal = width as f32 * 0.5 / (fov_x * 0.5).tan();
        Intrinsics::new(width, height, focal)
    }

    /// Total number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Back-projects pixel `(u, v)` at z-depth `depth` to camera coordinates
    /// — the paper's Eq. 1 applied to one pixel.
    #[inline]
    pub fn unproject(&self, u: f32, v: f32, depth: f32) -> Vec3 {
        Vec3::new(
            (u - self.cx) * depth / self.focal,
            (v - self.cy) * depth / self.focal,
            depth,
        )
    }

    /// Projects a camera-space point to pixel coordinates and z-depth — the
    /// paper's Eq. 3 applied to one point.
    ///
    /// Returns `None` for points at or behind the camera plane (`z <= 0`).
    #[inline]
    pub fn project(&self, p_cam: Vec3) -> Option<(f32, f32, f32)> {
        if p_cam.z <= 1e-6 {
            return None;
        }
        let u = self.focal * p_cam.x / p_cam.z + self.cx;
        let v = self.focal * p_cam.y / p_cam.z + self.cy;
        Some((u, v, p_cam.z))
    }

    /// Intrinsics for the same field of view at `1/factor` the resolution.
    ///
    /// Used by the DS-2 baseline (render at half resolution, upsample).
    pub fn downsampled(&self, factor: usize) -> Intrinsics {
        assert!(factor >= 1, "downsample factor must be >= 1");
        Intrinsics {
            width: self.width / factor,
            height: self.height / factor,
            focal: self.focal / factor as f32,
            cx: self.cx / factor as f32,
            cy: self.cy / factor as f32,
        }
    }
}

/// A posed pinhole camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Intrinsic parameters.
    pub intrinsics: Intrinsics,
    /// Camera-to-world pose.
    pub pose: Pose,
}

impl Camera {
    /// Creates a camera from intrinsics and pose.
    pub fn new(intrinsics: Intrinsics, pose: Pose) -> Self {
        Camera { intrinsics, pose }
    }

    /// The world-space primary ray through pixel coordinates `(u, v)`.
    ///
    /// `u` and `v` are continuous pixel coordinates; pass `x + 0.5, y + 0.5`
    /// for the center of integer pixel `(x, y)`.
    pub fn primary_ray(&self, u: f32, v: f32) -> Ray {
        let d_cam = Vec3::new(
            (u - self.intrinsics.cx) / self.intrinsics.focal,
            (v - self.intrinsics.cy) / self.intrinsics.focal,
            1.0,
        );
        Ray::new(self.pose.position, self.pose.dir_to_world(d_cam))
    }

    /// Conversion factor from ray parameter `t` (world units along the unit
    /// direction) to camera z-depth for the pixel `(u, v)`.
    ///
    /// The volume renderer integrates along unit-length rays but SPARW's
    /// warping equations consume z-depth maps, so `depth = t * z_scale(u, v)`.
    pub fn z_scale(&self, u: f32, v: f32) -> f32 {
        let d_cam = Vec3::new(
            (u - self.intrinsics.cx) / self.intrinsics.focal,
            (v - self.intrinsics.cy) / self.intrinsics.focal,
            1.0,
        );
        1.0 / d_cam.length()
    }

    /// Projects a world-space point to `(u, v, z-depth)`.
    ///
    /// Returns `None` if the point is behind the camera.
    pub fn project_world(&self, p_world: Vec3) -> Option<(f32, f32, f32)> {
        self.intrinsics.project(self.pose.to_camera(p_world))
    }

    /// Back-projects pixel `(u, v)` with z-depth `depth` to a world point.
    pub fn unproject_to_world(&self, u: f32, v: f32, depth: f32) -> Vec3 {
        self.pose.to_world(self.intrinsics.unproject(u, v, depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_camera() -> Camera {
        Camera::new(
            Intrinsics::from_fov(320, 240, 1.0),
            Pose::look_at(Vec3::new(0.0, 0.5, -4.0), Vec3::ZERO, Vec3::Y),
        )
    }

    #[test]
    fn project_unproject_roundtrip() {
        let cam = test_camera();
        let p = Vec3::new(0.3, -0.2, 0.5);
        let (u, v, z) = cam.project_world(p).expect("in front");
        let back = cam.unproject_to_world(u, v, z);
        assert!((back - p).length() < 1e-4);
    }

    #[test]
    fn center_pixel_ray_hits_target() {
        let cam = test_camera();
        let ray = cam.primary_ray(cam.intrinsics.cx, cam.intrinsics.cy);
        // The look-at target (origin) lies on the central ray.
        let t = (Vec3::ZERO - ray.origin).length();
        assert!((ray.at(t) - Vec3::ZERO).length() < 1e-4);
    }

    #[test]
    fn z_scale_converts_ray_t_to_depth() {
        let cam = test_camera();
        let (u, v) = (37.5, 101.5);
        let ray = cam.primary_ray(u, v);
        let t = 3.0;
        let world = ray.at(t);
        let depth = cam.pose.to_camera(world).z;
        assert!((t * cam.z_scale(u, v) - depth).abs() < 1e-4);
    }

    #[test]
    fn behind_camera_is_rejected() {
        let cam = test_camera();
        // A point far behind the camera.
        let p = cam.pose.position - cam.pose.forward() * 10.0;
        assert!(cam.project_world(p).is_none());
    }

    #[test]
    fn downsampled_preserves_fov() {
        let k = Intrinsics::from_fov(800, 800, 1.2);
        let k2 = k.downsampled(2);
        assert_eq!(k2.width, 400);
        // Same FoV: ratio width/focal unchanged.
        assert!((k.width as f32 / k.focal - k2.width as f32 / k2.focal).abs() < 1e-5);
    }

    #[test]
    fn projection_lands_in_image_for_visible_point() {
        let cam = test_camera();
        let (u, v, _) = cam.project_world(Vec3::ZERO).expect("visible");
        assert!(u > 0.0 && u < 320.0);
        assert!(v > 0.0 && v < 240.0);
    }
}
