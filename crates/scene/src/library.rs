//! The scene library: procedural stand-ins for the paper's datasets.
//!
//! Eight scenes mirror the structure of Synthetic-NeRF (bounded single-object
//! scenes with varied geometry and texture frequency); `materials` carries
//! specular (non-diffuse) surfaces to exercise the warp-angle heuristic;
//! `bonsai` and `ignatius` stand in for the Unbounded-360 and Tanks-and-Temples
//! captures (more clutter, larger extents).

use crate::scene::default_checker;
use crate::{AnalyticScene, Material, SceneBuilder, Shape, Texture};
use cicero_math::Vec3;

/// Names of the eight Synthetic-NeRF-like scenes.
pub const SYNTHETIC_SCENES: [&str; 8] = [
    "chair",
    "drums",
    "ficus",
    "hotdog",
    "lego",
    "materials",
    "mic",
    "ship",
];

/// Names of the real-world-like scenes.
pub const REAL_WORLD_SCENES: [&str; 2] = ["bonsai", "ignatius"];

/// Looks up any library scene by name.
pub fn scene_by_name(name: &str) -> Option<AnalyticScene> {
    match name {
        "chair" => Some(chair()),
        "drums" => Some(drums()),
        "ficus" => Some(ficus()),
        "hotdog" => Some(hotdog()),
        "lego" => Some(lego()),
        "materials" => Some(materials()),
        "mic" => Some(mic()),
        "ship" => Some(ship()),
        "bonsai" => Some(bonsai()),
        "ignatius" => Some(ignatius()),
        _ => None,
    }
}

/// All synthetic scenes, in canonical order.
pub fn synthetic_scenes() -> Vec<AnalyticScene> {
    SYNTHETIC_SCENES
        .iter()
        .map(|n| scene_by_name(n).unwrap())
        .collect()
}

/// A chair: seat, back, four legs.
pub fn chair() -> AnalyticScene {
    let wood = Material::diffuse(Texture::Noise {
        a: Vec3::new(0.45, 0.27, 0.12),
        b: Vec3::new(0.65, 0.45, 0.25),
        scale: 0.15,
    });
    let cushion = Material::diffuse(default_checker(
        Vec3::new(0.75, 0.15, 0.15),
        Vec3::new(0.85, 0.75, 0.65),
    ));
    let mut b = SceneBuilder::new("chair")
        .object(
            Shape::RoundedBox {
                half: Vec3::new(0.5, 0.06, 0.5),
                round: 0.03,
            },
            Vec3::new(0.0, 0.0, 0.0),
            cushion,
        )
        .object(
            Shape::RoundedBox {
                half: Vec3::new(0.5, 0.45, 0.05),
                round: 0.03,
            },
            Vec3::new(0.0, 0.5, -0.47),
            wood,
        );
    for (sx, sz) in [(-1.0_f32, -1.0_f32), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0)] {
        b = b.object(
            Shape::Cylinder {
                radius: 0.05,
                half_height: 0.35,
            },
            Vec3::new(sx * 0.42, -0.42, sz * 0.42),
            wood,
        );
    }
    b.build()
}

/// A drum kit: cylindrical shells and spherical toms.
pub fn drums() -> AnalyticScene {
    let shell = Material::diffuse(Texture::Stripes {
        a: Vec3::new(0.8, 0.1, 0.1),
        b: Vec3::new(0.9, 0.85, 0.8),
        period: 0.09,
    });
    let metal = Material::solid(Vec3::splat(0.7)).with_specular(0.35, 24.0);
    SceneBuilder::new("drums")
        .object(
            Shape::Cylinder {
                radius: 0.45,
                half_height: 0.28,
            },
            Vec3::new(0.0, -0.2, 0.0),
            shell,
        )
        .object(
            Shape::Cylinder {
                radius: 0.25,
                half_height: 0.16,
            },
            Vec3::new(-0.55, 0.15, 0.2),
            shell,
        )
        .object(
            Shape::Cylinder {
                radius: 0.25,
                half_height: 0.16,
            },
            Vec3::new(0.55, 0.15, 0.2),
            shell,
        )
        .object(
            Shape::Sphere { radius: 0.18 },
            Vec3::new(-0.3, 0.45, -0.3),
            metal,
        )
        .object(
            Shape::Sphere { radius: 0.18 },
            Vec3::new(0.3, 0.45, -0.3),
            metal,
        )
        .object(
            Shape::Torus {
                major: 0.35,
                minor: 0.025,
            },
            Vec3::new(0.0, 0.6, 0.15),
            metal,
        )
        .build()
}

/// A potted plant: trunk plus foliage clusters.
pub fn ficus() -> AnalyticScene {
    let leaves = Material::diffuse(Texture::Noise {
        a: Vec3::new(0.05, 0.35, 0.08),
        b: Vec3::new(0.25, 0.65, 0.2),
        scale: 0.08,
    });
    let trunk = Material::solid(Vec3::new(0.4, 0.26, 0.13));
    let pot = Material::diffuse(Texture::Stripes {
        a: Vec3::new(0.6, 0.3, 0.2),
        b: Vec3::new(0.5, 0.24, 0.16),
        period: 0.06,
    });
    let mut b = SceneBuilder::new("ficus")
        .object(
            Shape::Cylinder {
                radius: 0.3,
                half_height: 0.2,
            },
            Vec3::new(0.0, -0.75, 0.0),
            pot,
        )
        .object(
            Shape::Capsule {
                a: Vec3::new(0.0, -0.6, 0.0),
                b: Vec3::new(0.05, 0.3, 0.02),
                radius: 0.06,
            },
            Vec3::ZERO,
            trunk,
        );
    // Deterministic foliage cluster placement.
    for i in 0..9 {
        let a = i as f32 * 0.7;
        let r = 0.28 + 0.12 * ((i * 37 % 11) as f32 / 11.0);
        let y = 0.3 + 0.35 * ((i * 53 % 7) as f32 / 7.0);
        b = b.object(
            Shape::Sphere {
                radius: 0.16 + 0.05 * ((i % 3) as f32 / 3.0),
            },
            Vec3::new(r * a.cos(), y, r * a.sin()),
            leaves,
        );
    }
    b.build()
}

/// A hotdog on a plate.
pub fn hotdog() -> AnalyticScene {
    let sausage = Material::diffuse(Texture::Noise {
        a: Vec3::new(0.65, 0.25, 0.1),
        b: Vec3::new(0.8, 0.4, 0.2),
        scale: 0.07,
    });
    let bun = Material::diffuse(Texture::Noise {
        a: Vec3::new(0.85, 0.65, 0.35),
        b: Vec3::new(0.95, 0.8, 0.55),
        scale: 0.12,
    });
    let plate = Material::solid(Vec3::splat(0.9)).with_specular(0.15, 12.0);
    SceneBuilder::new("hotdog")
        .object(
            Shape::Cylinder {
                radius: 0.8,
                half_height: 0.04,
            },
            Vec3::new(0.0, -0.3, 0.0),
            plate,
        )
        .object(
            Shape::Capsule {
                a: Vec3::new(-0.45, 0.0, 0.0),
                b: Vec3::new(0.45, 0.0, 0.0),
                radius: 0.16,
            },
            Vec3::new(0.0, -0.1, 0.1),
            bun,
        )
        .object(
            Shape::Capsule {
                a: Vec3::new(-0.5, 0.0, 0.0),
                b: Vec3::new(0.5, 0.0, 0.0),
                radius: 0.08,
            },
            Vec3::new(0.0, 0.04, 0.1),
            sausage,
        )
        .object(
            Shape::Capsule {
                a: Vec3::new(-0.42, 0.0, 0.0),
                b: Vec3::new(0.42, 0.0, 0.0),
                radius: 0.15,
            },
            Vec3::new(0.0, -0.08, -0.25),
            bun,
        )
        .build()
}

/// A blocky bulldozer (fine checker texture for high-frequency content).
pub fn lego() -> AnalyticScene {
    let yellow = Material::diffuse(Texture::Checker {
        a: Vec3::new(0.9, 0.75, 0.1),
        b: Vec3::new(0.8, 0.6, 0.05),
        scale: 0.07,
    });
    let grey = Material::diffuse(Texture::Checker {
        a: Vec3::splat(0.45),
        b: Vec3::splat(0.3),
        scale: 0.05,
    });
    let black = Material::solid(Vec3::splat(0.08));
    let mut b = SceneBuilder::new("lego")
        .object(
            Shape::Box {
                half: Vec3::new(0.55, 0.12, 0.35),
            },
            Vec3::new(0.0, -0.25, 0.0),
            grey,
        )
        .object(
            Shape::Box {
                half: Vec3::new(0.3, 0.2, 0.3),
            },
            Vec3::new(-0.15, 0.08, 0.0),
            yellow,
        )
        .object(
            Shape::Box {
                half: Vec3::new(0.12, 0.12, 0.26),
            },
            Vec3::new(0.25, 0.02, 0.0),
            yellow,
        )
        .object(
            Shape::Box {
                half: Vec3::new(0.04, 0.18, 0.3),
            },
            Vec3::new(0.52, 0.0, 0.0),
            yellow,
        );
    for i in 0..3 {
        let x = -0.35 + i as f32 * 0.35;
        b = b
            .object(
                Shape::Cylinder {
                    radius: 0.12,
                    half_height: 0.02,
                },
                Vec3::new(x, -0.42, 0.38),
                black,
            )
            .object(
                Shape::Cylinder {
                    radius: 0.12,
                    half_height: 0.02,
                },
                Vec3::new(x, -0.42, -0.38),
                black,
            );
    }
    b.build()
}

/// A grid of spheres with varying specular strength (the non-diffuse scene).
pub fn materials() -> AnalyticScene {
    let mut b = SceneBuilder::new("materials").object(
        Shape::Box {
            half: Vec3::new(1.0, 0.04, 1.0),
        },
        Vec3::new(0.0, -0.35, 0.0),
        Material::diffuse(default_checker(Vec3::splat(0.25), Vec3::splat(0.6))),
    );
    for row in 0..3 {
        for col in 0..3 {
            let hue = (row * 3 + col) as f32 / 9.0;
            let color = Vec3::new(
                0.5 + 0.5 * (hue * std::f32::consts::TAU).cos(),
                0.5 + 0.5 * ((hue + 0.33) * std::f32::consts::TAU).cos(),
                0.5 + 0.5 * ((hue + 0.66) * std::f32::consts::TAU).cos(),
            );
            // Specular strength rises across the grid: 0.0 (diffuse) → 0.8.
            let spec = (row * 3 + col) as f32 / 10.0;
            b = b.object(
                Shape::Sphere { radius: 0.16 },
                Vec3::new(col as f32 * 0.55 - 0.55, -0.12, row as f32 * 0.55 - 0.55),
                Material::solid(color).with_specular(spec, 28.0),
            );
        }
    }
    b.build()
}

/// A studio microphone.
pub fn mic() -> AnalyticScene {
    let mesh = Material::diffuse(Texture::Checker {
        a: Vec3::splat(0.65),
        b: Vec3::splat(0.35),
        scale: 0.03,
    });
    let metal = Material::solid(Vec3::splat(0.55)).with_specular(0.4, 20.0);
    let base = Material::solid(Vec3::splat(0.12));
    SceneBuilder::new("mic")
        .object(
            Shape::Sphere { radius: 0.28 },
            Vec3::new(0.0, 0.55, 0.0),
            mesh,
        )
        .object(
            Shape::Torus {
                major: 0.3,
                minor: 0.03,
            },
            Vec3::new(0.0, 0.55, 0.0),
            metal,
        )
        .object(
            Shape::Capsule {
                a: Vec3::new(0.0, -0.6, 0.0),
                b: Vec3::new(0.0, 0.25, 0.0),
                radius: 0.05,
            },
            Vec3::ZERO,
            metal,
        )
        .object(
            Shape::Cylinder {
                radius: 0.35,
                half_height: 0.05,
            },
            Vec3::new(0.0, -0.68, 0.0),
            base,
        )
        .build()
}

/// A sailing ship on noisy water.
pub fn ship() -> AnalyticScene {
    let hull = Material::diffuse(Texture::Stripes {
        a: Vec3::new(0.35, 0.2, 0.1),
        b: Vec3::new(0.45, 0.28, 0.15),
        period: 0.07,
    });
    let sail = Material::solid(Vec3::new(0.92, 0.9, 0.82));
    let water = Material::diffuse(Texture::Noise {
        a: Vec3::new(0.05, 0.2, 0.35),
        b: Vec3::new(0.15, 0.4, 0.55),
        scale: 0.1,
    })
    .with_specular(0.3, 8.0);
    SceneBuilder::new("ship")
        .object(
            Shape::Box {
                half: Vec3::new(1.1, 0.03, 1.1),
            },
            Vec3::new(0.0, -0.4, 0.0),
            water,
        )
        .object(
            Shape::RoundedBox {
                half: Vec3::new(0.55, 0.14, 0.2),
                round: 0.06,
            },
            Vec3::new(0.0, -0.22, 0.0),
            hull,
        )
        .object(
            Shape::Cylinder {
                radius: 0.03,
                half_height: 0.45,
            },
            Vec3::new(0.0, 0.2, 0.0),
            hull,
        )
        .object(
            Shape::Box {
                half: Vec3::new(0.28, 0.22, 0.01),
            },
            Vec3::new(0.0, 0.28, 0.04),
            sail,
        )
        .object(
            Shape::Cylinder {
                radius: 0.025,
                half_height: 0.3,
            },
            Vec3::new(0.45, 0.0, 0.0),
            hull,
        )
        .build()
}

/// A bonsai on a table — stands in for the Unbounded-360 `bonsai` capture.
pub fn bonsai() -> AnalyticScene {
    let foliage = Material::diffuse(Texture::Noise {
        a: Vec3::new(0.08, 0.3, 0.06),
        b: Vec3::new(0.3, 0.55, 0.15),
        scale: 0.06,
    });
    let trunk = Material::diffuse(Texture::Noise {
        a: Vec3::new(0.3, 0.2, 0.1),
        b: Vec3::new(0.45, 0.32, 0.18),
        scale: 0.05,
    });
    let pot = Material::solid(Vec3::new(0.35, 0.2, 0.5)).with_specular(0.2, 10.0);
    let table = Material::diffuse(default_checker(
        Vec3::new(0.55, 0.4, 0.25),
        Vec3::new(0.4, 0.28, 0.16),
    ));
    let mut b = SceneBuilder::new("bonsai")
        .object(
            Shape::Box {
                half: Vec3::new(1.4, 0.05, 1.4),
            },
            Vec3::new(0.0, -0.75, 0.0),
            table,
        )
        .object(
            Shape::Cylinder {
                radius: 0.42,
                half_height: 0.18,
            },
            Vec3::new(0.0, -0.5, 0.0),
            pot,
        )
        .object(
            Shape::Capsule {
                a: Vec3::new(0.0, -0.35, 0.0),
                b: Vec3::new(0.22, 0.25, 0.1),
                radius: 0.07,
            },
            Vec3::ZERO,
            trunk,
        )
        .object(
            Shape::Capsule {
                a: Vec3::new(0.1, 0.0, 0.05),
                b: Vec3::new(-0.2, 0.35, -0.1),
                radius: 0.045,
            },
            Vec3::ZERO,
            trunk,
        );
    for i in 0..7 {
        let a = i as f32 * 0.9 + 0.3;
        let r = 0.25 + 0.15 * ((i * 29 % 13) as f32 / 13.0);
        let y = 0.35 + 0.3 * ((i * 41 % 9) as f32 / 9.0);
        b = b.object(
            Shape::Sphere {
                radius: 0.14 + 0.06 * ((i % 4) as f32 / 4.0),
            },
            Vec3::new(r * a.cos(), y, r * a.sin()),
            foliage,
        );
    }
    b.build()
}

/// A statue on a pedestal — stands in for Tanks-and-Temples `Ignatius`.
pub fn ignatius() -> AnalyticScene {
    let bronze = Material::diffuse(Texture::Noise {
        a: Vec3::new(0.25, 0.2, 0.12),
        b: Vec3::new(0.45, 0.38, 0.22),
        scale: 0.05,
    })
    .with_specular(0.25, 14.0);
    let stone = Material::diffuse(Texture::Noise {
        a: Vec3::splat(0.45),
        b: Vec3::splat(0.65),
        scale: 0.12,
    });
    SceneBuilder::new("ignatius")
        .object(
            Shape::Box {
                half: Vec3::new(0.5, 0.3, 0.5),
            },
            Vec3::new(0.0, -0.75, 0.0),
            stone,
        )
        // Torso.
        .object(
            Shape::Capsule {
                a: Vec3::new(0.0, -0.35, 0.0),
                b: Vec3::new(0.0, 0.25, 0.0),
                radius: 0.2,
            },
            Vec3::ZERO,
            bronze,
        )
        // Head.
        .object(
            Shape::Sphere { radius: 0.14 },
            Vec3::new(0.0, 0.5, 0.0),
            bronze,
        )
        // Arms.
        .object(
            Shape::Capsule {
                a: Vec3::new(-0.18, 0.2, 0.0),
                b: Vec3::new(-0.42, -0.15, 0.12),
                radius: 0.06,
            },
            Vec3::ZERO,
            bronze,
        )
        .object(
            Shape::Capsule {
                a: Vec3::new(0.18, 0.2, 0.0),
                b: Vec3::new(0.45, 0.05, -0.05),
                radius: 0.06,
            },
            Vec3::ZERO,
            bronze,
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RadianceSource;

    #[test]
    fn all_library_scenes_resolve() {
        for name in SYNTHETIC_SCENES.iter().chain(REAL_WORLD_SCENES.iter()) {
            let s = scene_by_name(name).unwrap_or_else(|| panic!("missing scene {name}"));
            assert_eq!(&s.name, name);
            assert!(!s.objects().is_empty());
        }
        assert!(scene_by_name("nonexistent").is_none());
    }

    #[test]
    fn materials_scene_is_non_diffuse_lego_is_diffuse() {
        assert!(materials().has_specular());
        assert!(!lego().has_specular());
    }

    #[test]
    fn scenes_have_density_somewhere() {
        for s in synthetic_scenes() {
            let b = s.bounds();
            let mut found = false;
            // Scan a coarse grid for occupied space.
            for i in 0..4096 {
                let p = cicero_math::Vec3::new(
                    b.min.x + b.size().x * ((i % 16) as f32 + 0.5) / 16.0,
                    b.min.y + b.size().y * (((i / 16) % 16) as f32 + 0.5) / 16.0,
                    b.min.z + b.size().z * ((i / 256) as f32 + 0.5) / 16.0,
                );
                if s.density_at(p) > 0.0 {
                    found = true;
                    break;
                }
            }
            assert!(found, "scene {} looks empty", s.name);
        }
    }

    #[test]
    fn synthetic_scene_count_matches_paper_dataset() {
        assert_eq!(SYNTHETIC_SCENES.len(), 8); // Synthetic-NeRF has 8 scenes
        assert_eq!(synthetic_scenes().len(), 8);
    }
}
