//! Signed-distance primitives and scene objects.

use crate::Material;
use cicero_math::{Aabb, Vec3};

/// A signed-distance shape centered at the origin.
///
/// Negative distances are inside the shape. Scenes position shapes through the
/// owning [`Object`]'s translation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// A sphere of the given radius.
    Sphere {
        /// Sphere radius.
        radius: f32,
    },
    /// An axis-aligned box with the given half extents.
    Box {
        /// Half extents along each axis.
        half: Vec3,
    },
    /// A torus in the XZ plane.
    Torus {
        /// Distance from center to tube center.
        major: f32,
        /// Tube radius.
        minor: f32,
    },
    /// A capped vertical (Y-axis) cylinder.
    Cylinder {
        /// Cylinder radius.
        radius: f32,
        /// Half height.
        half_height: f32,
    },
    /// A box with rounded edges.
    RoundedBox {
        /// Half extents before rounding.
        half: Vec3,
        /// Rounding radius.
        round: f32,
    },
    /// A capsule between two points (in object space).
    Capsule {
        /// First endpoint.
        a: Vec3,
        /// Second endpoint.
        b: Vec3,
        /// Capsule radius.
        radius: f32,
    },
}

impl Shape {
    /// Signed distance from point `p` (object space) to the shape surface.
    pub fn sdf(&self, p: Vec3) -> f32 {
        match *self {
            Shape::Sphere { radius } => p.length() - radius,
            Shape::Box { half } => {
                let q = p.abs() - half;
                q.max(Vec3::ZERO).length() + q.max_element().min(0.0)
            }
            Shape::Torus { major, minor } => {
                let q = Vec3::new((p.x * p.x + p.z * p.z).sqrt() - major, p.y, 0.0);
                q.length() - minor
            }
            Shape::Cylinder {
                radius,
                half_height,
            } => {
                let d_radial = (p.x * p.x + p.z * p.z).sqrt() - radius;
                let d_axial = p.y.abs() - half_height;
                let outside = Vec3::new(d_radial.max(0.0), d_axial.max(0.0), 0.0).length();
                outside + d_radial.max(d_axial).min(0.0)
            }
            Shape::RoundedBox { half, round } => {
                let q = p.abs() - half;
                q.max(Vec3::ZERO).length() + q.max_element().min(0.0) - round
            }
            Shape::Capsule { a, b, radius } => {
                let pa = p - a;
                let ba = b - a;
                let h = (pa.dot(ba) / ba.length_squared()).clamp(0.0, 1.0);
                (pa - ba * h).length() - radius
            }
        }
    }

    /// A conservative axis-aligned bound of the shape (object space).
    pub fn bounds(&self) -> Aabb {
        match *self {
            Shape::Sphere { radius } => Aabb::centered_cube(radius),
            Shape::Box { half } => Aabb::new(-half, half),
            Shape::Torus { major, minor } => {
                let r = major + minor;
                Aabb::new(Vec3::new(-r, -minor, -r), Vec3::new(r, minor, r))
            }
            Shape::Cylinder {
                radius,
                half_height,
            } => Aabb::new(
                Vec3::new(-radius, -half_height, -radius),
                Vec3::new(radius, half_height, radius),
            ),
            Shape::RoundedBox { half, round } => {
                Aabb::new(-(half + Vec3::splat(round)), half + Vec3::splat(round))
            }
            Shape::Capsule { a, b, radius } => {
                let r = Vec3::splat(radius);
                Aabb::new(a.min(b) - r, a.max(b) + r)
            }
        }
    }
}

/// A positioned, textured shape inside an [`crate::AnalyticScene`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Object {
    /// Shape geometry.
    pub shape: Shape,
    /// World-space translation of the shape center.
    pub position: Vec3,
    /// Surface material.
    pub material: Material,
}

impl Object {
    /// Creates an object at `position`.
    pub fn new(shape: Shape, position: Vec3, material: Material) -> Self {
        Object {
            shape,
            position,
            material,
        }
    }

    /// Signed distance from world point `p`.
    #[inline]
    pub fn sdf(&self, p: Vec3) -> f32 {
        self.shape.sdf(p - self.position)
    }

    /// World-space bounding box.
    pub fn bounds(&self) -> Aabb {
        let b = self.shape.bounds();
        Aabb::new(b.min + self.position, b.max + self.position)
    }

    /// Outward surface normal via central differences of the SDF.
    pub fn normal(&self, p: Vec3) -> Vec3 {
        const EPS: f32 = 1e-3;
        let d = |q: Vec3| self.sdf(q);
        let g = Vec3::new(
            d(p + Vec3::X * EPS) - d(p - Vec3::X * EPS),
            d(p + Vec3::Y * EPS) - d(p - Vec3::Y * EPS),
            d(p + Vec3::Z * EPS) - d(p - Vec3::Z * EPS),
        );
        if g.length_squared() < 1e-20 {
            Vec3::Y
        } else {
            g.normalized()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_sdf_signs() {
        let s = Shape::Sphere { radius: 1.0 };
        assert!(s.sdf(Vec3::ZERO) < 0.0);
        assert!((s.sdf(Vec3::X) - 0.0).abs() < 1e-6);
        assert!(s.sdf(Vec3::X * 2.0) > 0.0);
    }

    #[test]
    fn box_sdf_on_faces() {
        let b = Shape::Box {
            half: Vec3::new(1.0, 2.0, 3.0),
        };
        assert!((b.sdf(Vec3::new(1.0, 0.0, 0.0))).abs() < 1e-6);
        assert!((b.sdf(Vec3::new(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-6);
        assert!(b.sdf(Vec3::ZERO) < 0.0);
    }

    #[test]
    fn torus_sdf_center_of_tube() {
        let t = Shape::Torus {
            major: 2.0,
            minor: 0.5,
        };
        // The circle x²+z²=4, y=0 is the tube center: distance = -minor.
        assert!((t.sdf(Vec3::new(2.0, 0.0, 0.0)) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn cylinder_contains_axis() {
        let c = Shape::Cylinder {
            radius: 0.5,
            half_height: 1.0,
        };
        assert!(c.sdf(Vec3::ZERO) < 0.0);
        assert!(c.sdf(Vec3::new(0.0, 1.5, 0.0)) > 0.0);
        assert!(c.sdf(Vec3::new(1.0, 0.0, 0.0)) > 0.0);
    }

    #[test]
    fn capsule_distance_from_segment() {
        let c = Shape::Capsule {
            a: Vec3::ZERO,
            b: Vec3::Y,
            radius: 0.25,
        };
        assert!((c.sdf(Vec3::new(0.5, 0.5, 0.0)) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn bounds_contain_surface_points() {
        let shapes = [
            Shape::Sphere { radius: 0.7 },
            Shape::Box {
                half: Vec3::new(0.3, 0.5, 0.2),
            },
            Shape::Torus {
                major: 0.6,
                minor: 0.2,
            },
            Shape::Cylinder {
                radius: 0.4,
                half_height: 0.8,
            },
            Shape::RoundedBox {
                half: Vec3::splat(0.4),
                round: 0.1,
            },
        ];
        for s in shapes {
            let b = s.bounds();
            // Sample a coarse grid; any point with sdf <= 0 must be inside bounds.
            for i in 0..512 {
                let p = Vec3::new(
                    ((i % 8) as f32 / 7.0 - 0.5) * 3.0,
                    (((i / 8) % 8) as f32 / 7.0 - 0.5) * 3.0,
                    ((i / 64) as f32 / 7.0 - 0.5) * 3.0,
                );
                if s.sdf(p) <= 0.0 {
                    assert!(b.contains(p), "{s:?} point {p} escapes bounds");
                }
            }
        }
    }

    #[test]
    fn object_translation_shifts_sdf() {
        let o = Object::new(
            Shape::Sphere { radius: 1.0 },
            Vec3::new(5.0, 0.0, 0.0),
            Material::default(),
        );
        assert!(o.sdf(Vec3::new(5.0, 0.0, 0.0)) < 0.0);
        assert!(o.sdf(Vec3::ZERO) > 0.0);
        assert!(o.bounds().contains(Vec3::new(5.5, 0.0, 0.0)));
    }

    #[test]
    fn normal_points_outward_on_sphere() {
        let o = Object::new(
            Shape::Sphere { radius: 1.0 },
            Vec3::ZERO,
            Material::default(),
        );
        let n = o.normal(Vec3::new(0.0, 1.0, 0.0));
        assert!((n - Vec3::Y).length() < 1e-2);
    }
}
