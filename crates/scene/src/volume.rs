//! The shared volume-rendering integrator.
//!
//! Both the analytic ground truth and every learned field in `cicero-field`
//! render through this one implementation of the classic emission-absorption
//! quadrature (paper §II-B, "Feature Computation" accumulation):
//!
//! ```text
//! α_i = 1 − exp(−σ_i · δ)          (per-sample opacity)
//! T_i = Π_{j<i} (1 − α_j)          (transmittance)
//! C   = Σ T_i · α_i · c_i + T_N · background
//! ```
//!
//! Keeping one integrator guarantees that PSNR comparisons between pipeline
//! variants measure the *algorithms* (warping, streaming) and never a drift in
//! integration math.

use crate::RadianceSource;
use cicero_math::{Ray, Vec3};

/// Ray-marching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarchParams {
    /// World-space distance between consecutive samples.
    pub step: f32,
    /// Stop marching when transmittance falls below this threshold.
    pub early_stop: f32,
    /// Opacity (1 − T) above which a pixel is considered surface rather than
    /// background; controls depth-map validity for warping.
    pub surface_opacity: f32,
}

impl Default for MarchParams {
    fn default() -> Self {
        MarchParams {
            step: 0.01,
            early_stop: 1e-3,
            surface_opacity: 0.5,
        }
    }
}

/// Result of integrating one ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarchResult {
    /// Composited radiance including background contribution.
    pub color: Vec3,
    /// Opacity-weighted expected ray parameter `E[t]`, or `f32::INFINITY`
    /// when the ray never accumulated `surface_opacity` (background pixel).
    pub depth_t: f32,
    /// Remaining transmittance after the volume.
    pub transmittance: f32,
    /// Number of density/radiance queries performed.
    pub samples: u32,
}

/// Integrates `src` along `ray` over the parametric interval `[t0, t1]`.
///
/// Samples are placed at interval midpoints (`t0 + (i + ½)·step`), which makes
/// the quadrature exact for piecewise-constant fields aligned to the steps and
/// keeps results independent of where `t0` falls relative to the volume.
pub fn march_ray<S: RadianceSource + ?Sized>(
    src: &S,
    ray: &Ray,
    t0: f32,
    t1: f32,
    params: &MarchParams,
) -> MarchResult {
    let mut color = Vec3::ZERO;
    let mut transmittance = 1.0_f32;
    let mut depth_acc = 0.0_f32;
    let mut opacity_acc = 0.0_f32;
    let mut samples = 0u32;

    let n = ((t1 - t0) / params.step).ceil() as u32;
    for i in 0..n {
        let t = t0 + (i as f32 + 0.5) * params.step;
        if t >= t1 {
            break;
        }
        let p = ray.at(t);
        let sigma = src.density_at(p);
        samples += 1;
        if sigma <= 0.0 {
            continue;
        }
        let alpha = 1.0 - (-sigma * params.step).exp();
        let weight = transmittance * alpha;
        let radiance = src.radiance_at(p, ray.dir);
        color += radiance * weight;
        depth_acc += t * weight;
        opacity_acc += weight;
        transmittance *= 1.0 - alpha;
        if transmittance < params.early_stop {
            transmittance = 0.0;
            break;
        }
    }

    color += src.background() * transmittance;
    let depth_t = if opacity_acc >= params.surface_opacity {
        depth_acc / opacity_acc
    } else {
        f32::INFINITY
    };
    MarchResult {
        color,
        depth_t,
        transmittance,
        samples,
    }
}

/// Integrates a ray against the source's own bounds.
///
/// Rays that miss the bounds return the background immediately.
pub fn march_ray_auto<S: RadianceSource + ?Sized>(
    src: &S,
    ray: &Ray,
    params: &MarchParams,
) -> MarchResult {
    match src.bounds().intersect(ray) {
        Some((t0, t1)) => march_ray(src, ray, t0, t1, params),
        None => MarchResult {
            color: src.background(),
            depth_t: f32::INFINITY,
            transmittance: 1.0,
            samples: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_math::Aabb;

    /// A homogeneous box of density `sigma` emitting constant radiance.
    struct Slab {
        sigma: f32,
        radiance: Vec3,
        bg: Vec3,
    }

    impl RadianceSource for Slab {
        fn density_at(&self, p: Vec3) -> f32 {
            if self.bounds().contains(p) {
                self.sigma
            } else {
                0.0
            }
        }
        fn radiance_at(&self, _p: Vec3, _d: Vec3) -> Vec3 {
            self.radiance
        }
        fn bounds(&self) -> Aabb {
            Aabb::centered_cube(1.0)
        }
        fn background(&self) -> Vec3 {
            self.bg
        }
    }

    fn z_ray() -> Ray {
        Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z)
    }

    #[test]
    fn empty_volume_returns_background() {
        let s = Slab {
            sigma: 0.0,
            radiance: Vec3::ONE,
            bg: Vec3::new(0.1, 0.2, 0.3),
        };
        let r = march_ray_auto(&s, &z_ray(), &MarchParams::default());
        assert!((r.color - s.bg).length() < 1e-6);
        assert_eq!(r.depth_t, f32::INFINITY);
        assert!((r.transmittance - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dense_volume_matches_beer_lambert() {
        // Analytic: T = exp(-sigma * L) through a slab of thickness L = 2.
        let s = Slab {
            sigma: 1.5,
            radiance: Vec3::ONE,
            bg: Vec3::ZERO,
        };
        let r = march_ray_auto(
            &s,
            &z_ray(),
            &MarchParams {
                step: 0.001,
                ..Default::default()
            },
        );
        let expected_t = (-1.5_f32 * 2.0).exp();
        assert!(
            (r.transmittance - expected_t).abs() < 1e-2,
            "{} vs {expected_t}",
            r.transmittance
        );
        // Emission: C = (1 - T) * radiance for constant fields.
        assert!((r.color.x - (1.0 - expected_t)).abs() < 1e-2);
    }

    #[test]
    fn opaque_volume_reports_front_surface_depth() {
        let s = Slab {
            sigma: 500.0,
            radiance: Vec3::ONE,
            bg: Vec3::ZERO,
        };
        let r = march_ray_auto(&s, &z_ray(), &MarchParams::default());
        // Front face of the unit cube is at t = 4 for a camera at z=-5.
        assert!((r.depth_t - 4.0).abs() < 0.05, "depth {}", r.depth_t);
        assert!(r.transmittance < 1e-3);
    }

    #[test]
    fn miss_ray_does_no_sampling() {
        let s = Slab {
            sigma: 10.0,
            radiance: Vec3::ONE,
            bg: Vec3::ZERO,
        };
        let ray = Ray::new(Vec3::new(0.0, 5.0, -5.0), Vec3::Z);
        let r = march_ray_auto(&s, &ray, &MarchParams::default());
        assert_eq!(r.samples, 0);
        assert_eq!(r.depth_t, f32::INFINITY);
    }

    #[test]
    fn early_stop_reduces_samples() {
        let s = Slab {
            sigma: 500.0,
            radiance: Vec3::ONE,
            bg: Vec3::ZERO,
        };
        let full = march_ray_auto(
            &s,
            &z_ray(),
            &MarchParams {
                early_stop: 0.0,
                ..Default::default()
            },
        );
        let early = march_ray_auto(
            &s,
            &z_ray(),
            &MarchParams {
                early_stop: 1e-2,
                ..Default::default()
            },
        );
        assert!(early.samples < full.samples);
        // Early stop truncates at most `early_stop` of the radiance per channel.
        assert!((early.color - full.color).length() < 1e-2 * 3f32.sqrt() + 1e-6);
    }

    #[test]
    fn translucency_blends_with_background() {
        let s = Slab {
            sigma: 0.2,
            radiance: Vec3::X,
            bg: Vec3::Z,
        };
        let r = march_ray_auto(&s, &z_ray(), &MarchParams::default());
        assert!(
            r.color.x > 0.0 && r.color.z > 0.0,
            "both media contribute: {}",
            r.color
        );
        // Thin volume: no surface.
        assert_eq!(r.depth_t, f32::INFINITY);
    }
}
