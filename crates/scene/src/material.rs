//! Surface materials and procedural textures.

use cicero_math::Vec3;

/// A procedural albedo texture evaluated at world-space positions.
///
/// High-frequency texture content matters for the reproduction: the PSNR gaps
/// between Cicero's warping, DS-2's downsampling and the full-render baseline
/// (paper Fig. 16) only appear when frames carry detail finer than two pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Texture {
    /// A single constant color.
    Solid(Vec3),
    /// A 3-D checkerboard alternating two colors with the given cell size.
    Checker {
        /// First cell color.
        a: Vec3,
        /// Second cell color.
        b: Vec3,
        /// Cell edge length in world units.
        scale: f32,
    },
    /// Axis-aligned stripes along Y alternating two colors.
    Stripes {
        /// First stripe color.
        a: Vec3,
        /// Second stripe color.
        b: Vec3,
        /// Stripe period in world units.
        period: f32,
    },
    /// Deterministic value noise blending two colors.
    Noise {
        /// Color at noise value 0.
        a: Vec3,
        /// Color at noise value 1.
        b: Vec3,
        /// Noise feature size in world units.
        scale: f32,
    },
}

impl Texture {
    /// Evaluates the texture at world position `p`.
    pub fn sample(&self, p: Vec3) -> Vec3 {
        match *self {
            Texture::Solid(c) => c,
            Texture::Checker { a, b, scale } => {
                let q = p / scale;
                let parity =
                    (q.x.floor() as i64 + q.y.floor() as i64 + q.z.floor() as i64).rem_euclid(2);
                if parity == 0 {
                    a
                } else {
                    b
                }
            }
            Texture::Stripes { a, b, period } => {
                let t = ((p.y / period).fract() + 1.0).fract();
                if t < 0.5 {
                    a
                } else {
                    b
                }
            }
            Texture::Noise { a, b, scale } => a.lerp(b, value_noise(p / scale)),
        }
    }
}

/// Deterministic trilinear value noise in `[0, 1]`.
fn value_noise(p: Vec3) -> f32 {
    let base = Vec3::new(p.x.floor(), p.y.floor(), p.z.floor());
    let f = p - base;
    // Smooth the interpolation weights.
    let f = Vec3::new(smooth(f.x), smooth(f.y), smooth(f.z));
    let mut acc = 0.0;
    for dz in 0..2 {
        for dy in 0..2 {
            for dx in 0..2 {
                let corner = base + Vec3::new(dx as f32, dy as f32, dz as f32);
                let w = (if dx == 0 { 1.0 - f.x } else { f.x })
                    * (if dy == 0 { 1.0 - f.y } else { f.y })
                    * (if dz == 0 { 1.0 - f.z } else { f.z });
                acc += w * hash3(corner);
            }
        }
    }
    acc
}

fn smooth(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Hashes an integer lattice point to `[0, 1]`.
fn hash3(p: Vec3) -> f32 {
    let (x, y, z) = (p.x as i64 as u64, p.y as i64 as u64, p.z as i64 as u64);
    let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ y.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ z.wrapping_mul(0x1656_67B1_9E37_79F9);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h & 0xFFFF_FFFF) as f32 / u32::MAX as f32
}

/// Surface material: albedo texture plus emissive and specular terms.
///
/// The specular term matters for the paper's §VI-F discussion: SPARW's
/// radiance-reuse assumption (`P→Px` radiance ≈ `P→Py` radiance) degrades on
/// non-diffuse surfaces, which the warp-angle threshold φ (Fig. 26) mitigates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Diffuse albedo texture.
    pub albedo: Texture,
    /// View-independent emitted radiance.
    pub emissive: Vec3,
    /// Specular reflectance strength in `[0, 1]`; 0 = perfectly diffuse.
    pub specular: f32,
    /// Phong shininess exponent (only meaningful when `specular > 0`).
    pub shininess: f32,
}

impl Material {
    /// A perfectly diffuse material with the given texture.
    pub fn diffuse(albedo: Texture) -> Self {
        Material {
            albedo,
            emissive: Vec3::ZERO,
            specular: 0.0,
            shininess: 1.0,
        }
    }

    /// A diffuse solid color.
    pub fn solid(color: Vec3) -> Self {
        Material::diffuse(Texture::Solid(color))
    }

    /// Adds a specular lobe to the material.
    pub fn with_specular(mut self, strength: f32, shininess: f32) -> Self {
        self.specular = strength.clamp(0.0, 1.0);
        self.shininess = shininess.max(1.0);
        self
    }

    /// Adds emitted radiance.
    pub fn with_emissive(mut self, emissive: Vec3) -> Self {
        self.emissive = emissive;
        self
    }
}

impl Default for Material {
    fn default() -> Self {
        Material::solid(Vec3::splat(0.7))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_is_position_independent() {
        let t = Texture::Solid(Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(t.sample(Vec3::ZERO), t.sample(Vec3::splat(9.0)));
    }

    #[test]
    fn checker_alternates() {
        let t = Texture::Checker {
            a: Vec3::ZERO,
            b: Vec3::ONE,
            scale: 1.0,
        };
        let c0 = t.sample(Vec3::new(0.5, 0.5, 0.5));
        let c1 = t.sample(Vec3::new(1.5, 0.5, 0.5));
        assert_ne!(c0, c1);
        let c2 = t.sample(Vec3::new(2.5, 0.5, 0.5));
        assert_eq!(c0, c2);
    }

    #[test]
    fn checker_handles_negative_coordinates() {
        let t = Texture::Checker {
            a: Vec3::ZERO,
            b: Vec3::ONE,
            scale: 1.0,
        };
        let c0 = t.sample(Vec3::new(0.5, 0.5, 0.5));
        let c_neg = t.sample(Vec3::new(-0.5, 0.5, 0.5));
        assert_ne!(c0, c_neg);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let t = Texture::Noise {
            a: Vec3::ZERO,
            b: Vec3::ONE,
            scale: 0.3,
        };
        for i in 0..50 {
            let p = Vec3::new(i as f32 * 0.17, -(i as f32) * 0.05, 1.0);
            let s = t.sample(p);
            assert_eq!(s, t.sample(p));
            assert!(s.x >= 0.0 && s.x <= 1.0);
        }
    }

    #[test]
    fn noise_is_continuous() {
        let t = Texture::Noise {
            a: Vec3::ZERO,
            b: Vec3::ONE,
            scale: 1.0,
        };
        let a = t.sample(Vec3::new(0.5, 0.5, 0.5));
        let b = t.sample(Vec3::new(0.5001, 0.5, 0.5));
        assert!((a - b).length() < 1e-2);
    }

    #[test]
    fn material_builders_compose() {
        let m = Material::solid(Vec3::ONE)
            .with_specular(0.5, 32.0)
            .with_emissive(Vec3::X);
        assert_eq!(m.specular, 0.5);
        assert_eq!(m.shininess, 32.0);
        assert_eq!(m.emissive, Vec3::X);
    }

    #[test]
    fn specular_strength_is_clamped() {
        let m = Material::solid(Vec3::ONE).with_specular(7.0, 0.1);
        assert_eq!(m.specular, 1.0);
        assert_eq!(m.shininess, 1.0);
    }
}
