//! Procedural analytic scenes, ground-truth volume rendering and camera
//! trajectories for the Cicero reproduction.
//!
//! The paper evaluates on Synthetic-NeRF, Unbounded-360 and Tanks-and-Temples
//! scenes with offline-trained NeRF models. Neither the datasets nor trained
//! checkpoints are available offline, so this crate substitutes *analytic*
//! scenes: signed-distance primitives with procedural materials and a known
//! closed-form density/radiance field. The substitution is documented in
//! `DESIGN.md` §3; everything the paper measures (warp overlap, disocclusion
//! rates, DRAM access patterns, PSNR deltas between pipeline variants) depends
//! only on scene geometry, camera motion and encoding layout — all preserved.
//!
//! Key pieces:
//!
//! - [`AnalyticScene`] — a collection of SDF [`Object`]s with a smooth density
//!   shell and Blinn-Phong-style radiance; it implements [`RadianceSource`],
//!   the interface shared with the learned fields in `cicero-field`.
//! - [`volume`] — the single shared volume-rendering integrator, used both for
//!   ground truth here and by the NeRF renderer, so quality comparisons never
//!   diverge on integration math.
//! - [`library`] — eight Synthetic-NeRF-like scenes plus two real-world-like
//!   scenes (`bonsai`, `ignatius`).
//! - [`Trajectory`] — orbit / handheld / fly-through camera paths at a chosen
//!   frame rate, with subsampling to produce the paper's 1 FPS variants.
//!
//! # Example
//!
//! ```
//! use cicero_scene::{library, Trajectory};
//!
//! let scene = library::scene_by_name("lego").unwrap();
//! let traj = Trajectory::orbit(&scene, 8, 30.0);
//! assert_eq!(traj.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ground_truth;
pub mod library;
mod material;
mod primitive;
mod scene;
mod trajectory;
pub mod volume;

pub use material::{Material, Texture};
pub use primitive::{Object, Shape};
pub use scene::{AnalyticScene, RadianceSource, SceneBuilder};
pub use trajectory::{Trajectory, TrajectoryKind};
