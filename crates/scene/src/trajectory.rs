//! Camera trajectories: the temporal dimension of the reproduction.
//!
//! SPARW's effectiveness is a function of inter-frame camera motion (paper
//! §III-A: overlap is "a fundamental attribute of real-time rendering").
//! Trajectories here model the three regimes the paper evaluates:
//!
//! - smooth orbits (Synthetic-NeRF style evaluation paths),
//! - handheld 6-DoF motion with low-frequency shake (VR head motion),
//! - temporally sparse captures ([`Trajectory::subsample`] reproduces the
//!   1 FPS Tanks-and-Temples sequences of Fig. 25a/26).

use crate::AnalyticScene;
use cicero_math::{Camera, Intrinsics, Pose, Vec3};

/// The kind of generated camera path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryKind {
    /// Circular orbit around the scene center at constant height.
    Orbit,
    /// Orbit with smooth handheld shake and breathing dolly (VR-like).
    Handheld,
    /// Dolly from far to near along a gentle arc.
    FlyThrough,
}

/// A sequence of camera poses captured at a fixed frame rate.
#[derive(Debug, Clone)]
pub struct Trajectory {
    poses: Vec<Pose>,
    fps: f32,
}

impl Trajectory {
    /// Builds a trajectory from explicit poses.
    ///
    /// # Panics
    ///
    /// Panics if `poses` is empty or `fps` is not positive.
    pub fn from_poses(poses: Vec<Pose>, fps: f32) -> Self {
        assert!(!poses.is_empty(), "trajectory needs at least one pose");
        assert!(fps > 0.0, "fps must be positive");
        Trajectory { poses, fps }
    }

    /// An **empty** trajectory for streaming ingestion: poses arrive one at a
    /// time via [`push`](Self::push) as a client feeds them. Every other
    /// constructor forbids emptiness; streaming consumers must tolerate
    /// `len() == 0` until the first pose lands.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive.
    pub fn streaming(fps: f32) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        Trajectory {
            poses: Vec::new(),
            fps,
        }
    }

    /// Appends one pose to the trajectory (streaming ingestion: the client
    /// produced its next frame's camera). Feeding every pose of a captured
    /// trajectory through `push` reproduces that trajectory exactly.
    pub fn push(&mut self, pose: Pose) {
        self.poses.push(pose);
    }

    /// A smooth orbit of `frames` poses around `scene` at `fps`.
    ///
    /// Angular speed is fixed at 18°/s regardless of frame rate, so a 30 FPS
    /// orbit moves 0.6° per frame while its 1 FPS subsample moves 18° — the
    /// same temporal-resolution contrast as the paper's Fig. 25.
    pub fn orbit(scene: &AnalyticScene, frames: usize, fps: f32) -> Self {
        Self::generate(scene, frames, fps, TrajectoryKind::Orbit, 0)
    }

    /// A handheld (VR-like) trajectory with seed-controlled shake.
    pub fn handheld(scene: &AnalyticScene, frames: usize, fps: f32, seed: u64) -> Self {
        Self::generate(scene, frames, fps, TrajectoryKind::Handheld, seed)
    }

    /// Generates a trajectory of the given kind.
    pub fn generate(
        scene: &AnalyticScene,
        frames: usize,
        fps: f32,
        kind: TrajectoryKind,
        seed: u64,
    ) -> Self {
        assert!(frames > 0 && fps > 0.0);
        let bounds = crate::RadianceSource::bounds(scene);
        let center = bounds.center();
        let extent = bounds.size().max_element();
        let radius = extent * 1.6;
        let height = extent * 0.45;
        let angular_speed = 18.0_f32.to_radians(); // rad/s
                                                   // Deterministic per-seed phases for handheld shake.
        let phase = |k: u64| -> f32 {
            let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            (h & 0xFFFF) as f32 / 65535.0 * std::f32::consts::TAU
        };
        let poses = (0..frames)
            .map(|i| {
                let t = i as f32 / fps;
                match kind {
                    TrajectoryKind::Orbit => {
                        let a = angular_speed * t;
                        let eye = center + Vec3::new(radius * a.cos(), height, radius * a.sin());
                        Pose::look_at(eye, center, Vec3::Y)
                    }
                    TrajectoryKind::Handheld => {
                        let a = angular_speed * t;
                        // Low-frequency positional shake (head sway) plus a
                        // breathing dolly; smooth so velocity extrapolation
                        // (paper Eq. 5-6) remains meaningful.
                        let sway = Vec3::new(
                            (1.3 * t + phase(1)).sin() * 0.03,
                            (0.9 * t + phase(2)).sin() * 0.02,
                            (1.7 * t + phase(3)).sin() * 0.03,
                        ) * extent;
                        let breathe = 1.0 + 0.08 * (0.5 * t + phase(4)).sin();
                        let eye = center
                            + Vec3::new(
                                radius * breathe * a.cos(),
                                height,
                                radius * breathe * a.sin(),
                            )
                            + sway;
                        let look_jitter = Vec3::new(
                            (1.1 * t + phase(5)).sin() * 0.02,
                            (1.9 * t + phase(6)).sin() * 0.02,
                            0.0,
                        ) * extent;
                        Pose::look_at(eye, center + look_jitter, Vec3::Y)
                    }
                    TrajectoryKind::FlyThrough => {
                        let progress = t / ((frames as f32 / fps).max(1e-6));
                        let dist = radius * (1.4 - 0.8 * progress);
                        let a = 0.4 * (progress * std::f32::consts::PI).sin();
                        let eye = center + Vec3::new(dist * a.sin(), height, -dist * a.cos());
                        Pose::look_at(eye, center, Vec3::Y)
                    }
                }
            })
            .collect();
        Trajectory { poses, fps }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// `true` when the trajectory holds no poses — only possible for a
    /// [`streaming`](Self::streaming) trajectory that has not received its
    /// first pose yet.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Frame rate of the capture.
    pub fn fps(&self) -> f32 {
        self.fps
    }

    /// Pose of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn pose(&self, i: usize) -> &Pose {
        &self.poses[i]
    }

    /// All poses.
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }

    /// Camera for frame `i` with the given intrinsics.
    pub fn camera(&self, i: usize, intrinsics: Intrinsics) -> Camera {
        Camera::new(intrinsics, *self.pose(i))
    }

    /// Keeps every `k`-th frame, dividing the effective frame rate by `k`.
    ///
    /// `traj.subsample(30)` turns a 30 FPS capture into the paper's 1 FPS
    /// "sparse" condition (Fig. 25a) with correspondingly large inter-frame
    /// pose deltas.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn subsample(&self, k: usize) -> Trajectory {
        assert!(k > 0, "subsample factor must be positive");
        Trajectory {
            poses: self.poses.iter().copied().step_by(k).collect(),
            fps: self.fps / k as f32,
        }
    }

    /// Mean inter-frame pose delta (translation + rotation-angle proxy).
    pub fn mean_frame_delta(&self) -> f32 {
        if self.poses.len() < 2 {
            return 0.0;
        }
        let total: f32 = self.poses.windows(2).map(|w| w[0].distance_to(&w[1])).sum();
        total / (self.poses.len() - 1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Material, SceneBuilder, Shape};

    fn scene() -> AnalyticScene {
        SceneBuilder::new("t")
            .object(
                Shape::Sphere { radius: 1.0 },
                Vec3::ZERO,
                Material::default(),
            )
            .build()
    }

    #[test]
    fn orbit_keeps_scene_in_view() {
        let s = scene();
        let traj = Trajectory::orbit(&s, 16, 30.0);
        for p in traj.poses() {
            // Forward vector should point roughly toward the scene center.
            let to_center = (Vec3::ZERO - p.position).normalized();
            assert!(p.forward().dot(to_center) > 0.95);
        }
    }

    #[test]
    fn higher_fps_means_smaller_deltas() {
        let s = scene();
        let fast = Trajectory::orbit(&s, 30, 30.0);
        let slow = Trajectory::orbit(&s, 30, 1.0);
        assert!(fast.mean_frame_delta() < slow.mean_frame_delta() / 5.0);
    }

    #[test]
    fn subsample_matches_slow_capture_spacing() {
        let s = scene();
        let dense = Trajectory::orbit(&s, 60, 30.0);
        let sparse = dense.subsample(30);
        assert_eq!(sparse.len(), 2);
        assert!((sparse.fps() - 1.0).abs() < 1e-6);
        // Pose 1 of the subsample equals pose 30 of the dense capture.
        assert_eq!(sparse.pose(1), dense.pose(30));
    }

    #[test]
    fn handheld_is_deterministic_per_seed() {
        let s = scene();
        let a = Trajectory::handheld(&s, 10, 30.0, 7);
        let b = Trajectory::handheld(&s, 10, 30.0, 7);
        let c = Trajectory::handheld(&s, 10, 30.0, 8);
        assert_eq!(a.poses(), b.poses());
        assert_ne!(a.poses(), c.poses());
    }

    #[test]
    fn handheld_moves_smoothly() {
        let s = scene();
        let traj = Trajectory::handheld(&s, 60, 30.0, 3);
        let mean = traj.mean_frame_delta();
        for w in traj.poses().windows(2) {
            let d = w[0].distance_to(&w[1]);
            assert!(d < mean * 4.0 + 1e-3, "jerky motion: {d} vs mean {mean}");
        }
    }

    #[test]
    fn fly_through_approaches_scene() {
        let s = scene();
        let traj = Trajectory::generate(&s, 20, 30.0, TrajectoryKind::FlyThrough, 0);
        let first = traj.pose(0).position.length();
        let last = traj.pose(19).position.length();
        assert!(last < first);
    }

    #[test]
    #[should_panic]
    fn empty_trajectory_rejected() {
        let _ = Trajectory::from_poses(vec![], 30.0);
    }
}
