//! Ground-truth frame rendering from analytic scenes.
//!
//! The paper's quality metric (PSNR) compares rendered frames to dataset
//! photographs. Our substitution renders the analytic scene directly with the
//! shared volume integrator — baked NeRF encodings then score finite PSNR
//! against this ground truth (their discretization error plays the role of the
//! trained model's reconstruction error), and SPARW/DS-2/Temp variants stack
//! further losses on top exactly as in the paper's Fig. 16.

use crate::volume::{march_ray_auto, MarchParams};
use crate::RadianceSource;
use cicero_math::{Camera, DepthMap, Image, RgbImage};

/// An RGB frame with its z-depth map.
///
/// SPARW consumes both: colors to warp, depths to build the point cloud
/// (paper Eq. 1). Background pixels carry `f32::INFINITY` depth.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Rendered radiance.
    pub color: RgbImage,
    /// Per-pixel z-depth (camera-space z, not ray length).
    pub depth: DepthMap,
}

impl Frame {
    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.color.width()
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.color.height()
    }
}

/// Renders a full frame of `src` from `camera` by per-pixel ray marching.
///
/// Returns the color image and the z-depth map. This is the reference-quality
/// path — every pixel is integrated, no reuse, no approximation.
pub fn render_frame<S: RadianceSource + ?Sized>(
    src: &S,
    camera: &Camera,
    params: &MarchParams,
) -> Frame {
    let (w, h) = (camera.intrinsics.width, camera.intrinsics.height);
    let mut color = RgbImage::black(w, h);
    let mut depth = DepthMap::empty(w, h);
    for y in 0..h {
        for x in 0..w {
            let (u, v) = (x as f32 + 0.5, y as f32 + 0.5);
            let ray = camera.primary_ray(u, v);
            let r = march_ray_auto(src, &ray, params);
            *color.get_mut(x, y) = r.color;
            *depth.get_mut(x, y) = if r.depth_t.is_finite() {
                r.depth_t * camera.z_scale(u, v)
            } else {
                f32::INFINITY
            };
        }
    }
    Frame { color, depth }
}

/// Renders only the pixels selected by `mask` (row-major, `true` = render),
/// writing into an existing frame. Used by SPARW's sparse NeRF stage.
///
/// Returns the number of rendered pixels.
///
/// # Panics
///
/// Panics if `mask` length differs from the frame pixel count or the frame
/// dimensions differ from the camera's.
pub fn render_sparse<S: RadianceSource + ?Sized>(
    src: &S,
    camera: &Camera,
    params: &MarchParams,
    mask: &[bool],
    frame: &mut Frame,
) -> usize {
    let (w, h) = (camera.intrinsics.width, camera.intrinsics.height);
    assert_eq!(mask.len(), w * h, "mask must cover every pixel");
    assert_eq!(
        (frame.width(), frame.height()),
        (w, h),
        "frame/camera size mismatch"
    );
    let mut rendered = 0;
    for y in 0..h {
        for x in 0..w {
            if !mask[y * w + x] {
                continue;
            }
            let (u, v) = (x as f32 + 0.5, y as f32 + 0.5);
            let ray = camera.primary_ray(u, v);
            let r = march_ray_auto(src, &ray, params);
            *frame.color.get_mut(x, y) = r.color;
            *frame.depth.get_mut(x, y) = if r.depth_t.is_finite() {
                r.depth_t * camera.z_scale(u, v)
            } else {
                f32::INFINITY
            };
            rendered += 1;
        }
    }
    rendered
}

/// Creates an all-background frame (used as the canvas for warping).
pub fn background_frame<S: RadianceSource + ?Sized>(src: &S, w: usize, h: usize) -> Frame {
    Frame {
        color: Image::new(w, h, src.background()),
        depth: DepthMap::empty(w, h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Material, SceneBuilder, Shape};
    use cicero_math::{Intrinsics, Pose, Vec3};

    fn sphere_scene() -> crate::AnalyticScene {
        SceneBuilder::new("t")
            .object(
                Shape::Sphere { radius: 0.8 },
                Vec3::ZERO,
                Material::solid(Vec3::ONE),
            )
            .build()
    }

    fn camera(w: usize, h: usize) -> Camera {
        Camera::new(
            Intrinsics::from_fov(w, h, 0.9),
            Pose::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y),
        )
    }

    #[test]
    fn center_pixel_sees_sphere_border_sees_background() {
        let scene = sphere_scene();
        let cam = camera(33, 33);
        let f = render_frame(&scene, &cam, &MarchParams::default());
        assert!(
            f.depth.get(16, 16).is_finite(),
            "center should hit the sphere"
        );
        assert!(
            f.depth.get(0, 0).is_infinite(),
            "corner should be background"
        );
        // The lit sphere is brighter than the dark background.
        assert!(f.color.get(16, 16).length() > f.color.get(0, 0).length());
    }

    #[test]
    fn depth_is_z_not_ray_length() {
        let scene = sphere_scene();
        let cam = camera(33, 33);
        let f = render_frame(&scene, &cam, &MarchParams::default());
        // Center ray: sphere front at z = -0.8 → depth ≈ 3 - 0.8 (soft shell shifts slightly in).
        let d = *f.depth.get(16, 16);
        assert!((d - 2.2).abs() < 0.1, "depth {d}");
        // Off-center pixels see the sphere slightly farther in z? No: z-depth of a
        // sphere's visible surface is minimized at the silhouette tangent point;
        // just check it stays within the sphere's z-extent.
        for y in 0..33 {
            for x in 0..33 {
                let d = *f.depth.get(x, y);
                if d.is_finite() {
                    assert!(d > 2.0 && d < 3.2, "depth {d} out of range at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn sparse_render_only_touches_mask() {
        let scene = sphere_scene();
        let cam = camera(17, 17);
        let full = render_frame(&scene, &cam, &MarchParams::default());
        let mut partial = background_frame(&scene, 17, 17);
        let mut mask = vec![false; 17 * 17];
        mask[8 * 17 + 8] = true; // center only
        let n = render_sparse(&scene, &cam, &MarchParams::default(), &mask, &mut partial);
        assert_eq!(n, 1);
        assert_eq!(partial.color.get(8, 8), full.color.get(8, 8));
        // Untouched pixel keeps the background canvas value.
        assert_eq!(*partial.depth.get(0, 0), f32::INFINITY);
    }

    #[test]
    fn coverage_grows_with_fov_narrowing() {
        let scene = sphere_scene();
        let wide = render_frame(&scene, &camera(21, 21), &MarchParams::default());
        let narrow_cam = Camera::new(
            Intrinsics::from_fov(21, 21, 0.4),
            Pose::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y),
        );
        let narrow = render_frame(&scene, &narrow_cam, &MarchParams::default());
        assert!(narrow.depth.coverage() > wide.depth.coverage());
    }
}
