//! Analytic scenes: the ground-truth density and radiance field.

use crate::{Material, Object, Shape, Texture};
use cicero_math::{smoothstep, Aabb, Vec3};

/// A continuous volumetric field that can be volume rendered.
///
/// Implemented by [`AnalyticScene`] (ground truth) and by every learned
/// radiance field in `cicero-field`, so the shared integrator in
/// [`crate::volume`] renders both identically.
pub trait RadianceSource {
    /// Volume density σ at world position `p` (1/world-unit).
    fn density_at(&self, p: Vec3) -> f32;

    /// Emitted/reflected radiance at `p` toward direction `dir`.
    ///
    /// `dir` is the *ray propagation* direction (camera → scene), unit length.
    fn radiance_at(&self, p: Vec3, dir: Vec3) -> Vec3;

    /// Bounding box outside which the density is zero.
    fn bounds(&self) -> Aabb;

    /// Background radiance for rays that exit the volume un-absorbed.
    fn background(&self) -> Vec3 {
        Vec3::ZERO
    }
}

/// An analytic scene: SDF objects, a light, and a soft density shell.
///
/// Density is derived from the union SDF: `σ(p) = σ_max · smoothstep(0, w, -d)`
/// where `d` is the signed distance and `w` the shell width, so surfaces are
/// `w`-thick soft shells (exactly the structure grid NeRFs learn). Radiance is
/// a Blinn-Phong shading of the nearest object's material under a directional
/// light plus ambient — view-*independent* unless the material has a specular
/// lobe, matching the paper's diffuse/non-diffuse distinction.
#[derive(Debug, Clone)]
pub struct AnalyticScene {
    /// Scene name (e.g. `"lego"`).
    pub name: String,
    objects: Vec<Object>,
    bounds: Aabb,
    background: Vec3,
    /// Peak density inside objects.
    pub sigma_max: f32,
    /// Soft-shell width in world units.
    pub shell_width: f32,
    /// Directional light direction (pointing *from* the light).
    pub light_dir: Vec3,
    /// Directional light intensity.
    pub light_intensity: f32,
    /// Ambient light intensity.
    pub ambient: f32,
}

impl AnalyticScene {
    /// Objects of the scene.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// The union signed distance and the index of the nearest object.
    ///
    /// Returns `(f32::INFINITY, None)` for an empty scene.
    pub fn sdf(&self, p: Vec3) -> (f32, Option<usize>) {
        let mut best = f32::INFINITY;
        let mut idx = None;
        for (i, o) in self.objects.iter().enumerate() {
            let d = o.sdf(p);
            if d < best {
                best = d;
                idx = Some(i);
            }
        }
        (best, idx)
    }

    /// `true` if the scene contains any material with a specular lobe.
    pub fn has_specular(&self) -> bool {
        self.objects.iter().any(|o| o.material.specular > 0.0)
    }

    /// View-independent radiance: emissive + ambient + Lambertian diffuse.
    ///
    /// This is the part of the light field that warping can reuse exactly and
    /// that baked encodings store per vertex.
    pub fn diffuse_radiance_at(&self, p: Vec3) -> Vec3 {
        match self.sdf(p).1 {
            Some(i) => {
                let obj = &self.objects[i];
                let m = &obj.material;
                let albedo = m.albedo.sample(p);
                let n = obj.normal(p);
                let l = -self.light_dir.normalized();
                let diffuse = n.dot(l).max(0.0) * self.light_intensity;
                m.emissive + albedo * (self.ambient + diffuse)
            }
            None => self.background,
        }
    }

    /// The Phong specular lobe at `p`, folded for exact feature-space decode.
    ///
    /// Returns `q` such that the specular radiance toward ray direction `d`
    /// is `max(0, q · (−d))^m` with `m = shininess`: `q` is the light's
    /// mirror-reflection direction scaled by `(specular · intensity)^(1/m)`.
    /// Returns `None` for diffuse points.
    pub fn specular_lobe_at(&self, p: Vec3) -> Option<(Vec3, f32)> {
        let i = self.sdf(p).1?;
        let obj = &self.objects[i];
        let m = &obj.material;
        if m.specular <= 0.0 {
            return None;
        }
        let n = obj.normal(p);
        let l = -self.light_dir.normalized();
        let refl = (n * (2.0 * n.dot(l)) - l).normalized();
        let strength = m.specular * self.light_intensity;
        Some((refl * strength.powf(1.0 / m.shininess), m.shininess))
    }

    /// The largest shininess exponent among specular materials (1.0 if none).
    ///
    /// Baked models decode all specular lobes with this single exponent; the
    /// approximation error for materials with other exponents plays the role
    /// of a trained model's residual error.
    pub fn dominant_shininess(&self) -> f32 {
        self.objects
            .iter()
            .filter(|o| o.material.specular > 0.0)
            .map(|o| o.material.shininess)
            .fold(1.0, f32::max)
    }

    fn shade(&self, p: Vec3, view_dir: Vec3, obj: &Object) -> Vec3 {
        let m = &obj.material;
        let albedo = m.albedo.sample(p);
        let n = obj.normal(p);
        let l = -self.light_dir.normalized(); // toward the light
        let diffuse = n.dot(l).max(0.0) * self.light_intensity;
        let mut color = m.emissive + albedo * (self.ambient + diffuse);
        if m.specular > 0.0 {
            // Phong reflection term; `view_dir` points into the scene so the
            // eye vector is `-view_dir`.
            let v = -view_dir;
            let refl = (n * (2.0 * n.dot(l)) - l).normalized();
            let spec = refl.dot(v).max(0.0).powf(m.shininess) * m.specular * self.light_intensity;
            color += Vec3::splat(spec);
        }
        color
    }
}

impl RadianceSource for AnalyticScene {
    fn density_at(&self, p: Vec3) -> f32 {
        if !self.bounds.contains(p) {
            return 0.0;
        }
        let (d, _) = self.sdf(p);
        // Ramp from 0 at the surface to σ_max at depth `shell_width` inside.
        self.sigma_max * smoothstep(0.0, 1.0, -d / self.shell_width)
    }

    fn radiance_at(&self, p: Vec3, dir: Vec3) -> Vec3 {
        match self.sdf(p).1 {
            Some(i) => self.shade(p, dir, &self.objects[i]),
            None => self.background,
        }
    }

    fn bounds(&self) -> Aabb {
        self.bounds
    }

    fn background(&self) -> Vec3 {
        self.background
    }
}

/// Builder for [`AnalyticScene`].
///
/// ```
/// use cicero_scene::{SceneBuilder, Shape, Material};
/// use cicero_math::Vec3;
///
/// let scene = SceneBuilder::new("demo")
///     .object(Shape::Sphere { radius: 0.5 }, Vec3::ZERO, Material::solid(Vec3::ONE))
///     .build();
/// assert_eq!(scene.objects().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SceneBuilder {
    name: String,
    objects: Vec<Object>,
    background: Vec3,
    sigma_max: f32,
    shell_width: f32,
    light_dir: Vec3,
    light_intensity: f32,
    ambient: f32,
    explicit_bounds: Option<Aabb>,
}

impl SceneBuilder {
    /// Starts a new scene with sensible defaults.
    pub fn new(name: impl Into<String>) -> Self {
        SceneBuilder {
            name: name.into(),
            objects: Vec::new(),
            background: Vec3::splat(0.02),
            sigma_max: 90.0,
            shell_width: 0.08,
            light_dir: Vec3::new(-0.5, -1.0, -0.3),
            light_intensity: 0.8,
            ambient: 0.25,
            explicit_bounds: None,
        }
    }

    /// Adds an object.
    pub fn object(mut self, shape: Shape, position: Vec3, material: Material) -> Self {
        self.objects.push(Object::new(shape, position, material));
        self
    }

    /// Sets the background radiance.
    pub fn background(mut self, color: Vec3) -> Self {
        self.background = color;
        self
    }

    /// Sets peak density and shell width.
    pub fn density(mut self, sigma_max: f32, shell_width: f32) -> Self {
        assert!(sigma_max > 0.0 && shell_width > 0.0);
        self.sigma_max = sigma_max;
        self.shell_width = shell_width;
        self
    }

    /// Sets the directional light.
    pub fn light(mut self, dir: Vec3, intensity: f32, ambient: f32) -> Self {
        self.light_dir = dir;
        self.light_intensity = intensity;
        self.ambient = ambient;
        self
    }

    /// Overrides the automatic bounding box.
    pub fn bounds(mut self, bounds: Aabb) -> Self {
        self.explicit_bounds = Some(bounds);
        self
    }

    /// Finishes the scene.
    ///
    /// # Panics
    ///
    /// Panics if the scene has no objects and no explicit bounds.
    pub fn build(self) -> AnalyticScene {
        let bounds = self.explicit_bounds.unwrap_or_else(|| {
            assert!(
                !self.objects.is_empty(),
                "scene needs objects or explicit bounds"
            );
            let pad = Vec3::splat(self.shell_width * 2.0);
            let mut min = Vec3::splat(f32::INFINITY);
            let mut max = Vec3::splat(f32::NEG_INFINITY);
            for o in &self.objects {
                let b = o.bounds();
                min = min.min(b.min);
                max = max.max(b.max);
            }
            Aabb::new(min - pad, max + pad)
        });
        AnalyticScene {
            name: self.name,
            objects: self.objects,
            bounds,
            background: self.background,
            sigma_max: self.sigma_max,
            shell_width: self.shell_width,
            light_dir: self.light_dir,
            light_intensity: self.light_intensity,
            ambient: self.ambient,
        }
    }
}

/// A convenience texture used by several library scenes.
pub(crate) fn default_checker(a: Vec3, b: Vec3) -> Texture {
    Texture::Checker { a, b, scale: 0.22 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_sphere() -> AnalyticScene {
        SceneBuilder::new("t")
            .object(
                Shape::Sphere { radius: 1.0 },
                Vec3::ZERO,
                Material::solid(Vec3::ONE),
            )
            .build()
    }

    #[test]
    fn density_zero_outside_positive_inside() {
        let s = one_sphere();
        assert_eq!(s.density_at(Vec3::new(0.0, 0.0, 3.0)), 0.0);
        assert!(s.density_at(Vec3::ZERO) > 0.0);
        // Deep inside reaches sigma_max.
        assert!((s.density_at(Vec3::ZERO) - s.sigma_max).abs() < 1e-3);
    }

    #[test]
    fn density_ramps_across_shell() {
        let s = one_sphere();
        let just_inside = s.density_at(Vec3::new(0.0, 0.0, 1.0 - 0.25 * s.shell_width));
        let deeper = s.density_at(Vec3::new(0.0, 0.0, 1.0 - 0.75 * s.shell_width));
        assert!(just_inside < deeper, "{just_inside} !< {deeper}");
    }

    #[test]
    fn radiance_is_view_independent_for_diffuse() {
        let s = one_sphere();
        let p = Vec3::new(0.0, 0.99, 0.0);
        let r1 = s.radiance_at(p, Vec3::new(0.0, -1.0, 0.0));
        let r2 = s.radiance_at(p, Vec3::new(0.7, -0.7, 0.0).normalized());
        assert!((r1 - r2).length() < 1e-6);
    }

    #[test]
    fn specular_radiance_varies_with_view() {
        let s = SceneBuilder::new("spec")
            .object(
                Shape::Sphere { radius: 1.0 },
                Vec3::ZERO,
                Material::solid(Vec3::ONE).with_specular(0.9, 16.0),
            )
            .build();
        assert!(s.has_specular());
        let p = Vec3::new(0.0, 0.99, 0.0);
        let r1 = s.radiance_at(p, Vec3::new(0.0, -1.0, 0.0));
        // View from the mirror direction of the light should differ.
        let l = -s.light_dir.normalized();
        let n = Vec3::Y;
        let refl = (n * (2.0 * n.dot(l)) - l).normalized();
        let r2 = s.radiance_at(p, -refl);
        assert!((r1 - r2).length() > 1e-3);
    }

    #[test]
    fn auto_bounds_cover_objects() {
        let s = SceneBuilder::new("b")
            .object(
                Shape::Sphere { radius: 0.5 },
                Vec3::new(2.0, 0.0, 0.0),
                Material::default(),
            )
            .object(
                Shape::Sphere { radius: 0.5 },
                Vec3::new(-2.0, 0.0, 0.0),
                Material::default(),
            )
            .build();
        assert!(s.bounds().contains(Vec3::new(2.4, 0.0, 0.0)));
        assert!(s.bounds().contains(Vec3::new(-2.4, 0.0, 0.0)));
    }

    #[test]
    fn shade_decomposes_into_diffuse_plus_folded_lobe() {
        let s = SceneBuilder::new("spec")
            .object(
                Shape::Sphere { radius: 1.0 },
                Vec3::ZERO,
                Material::solid(Vec3::new(0.3, 0.6, 0.9)).with_specular(0.7, 24.0),
            )
            .build();
        let p = Vec3::new(0.2, 0.95, 0.1);
        let dir = Vec3::new(0.1, -0.9, 0.3).normalized();
        let full = s.radiance_at(p, dir);
        let diffuse = s.diffuse_radiance_at(p);
        let (q, m) = s.specular_lobe_at(p).expect("specular");
        let spec = q.dot(-dir).max(0.0).powf(m);
        let recomposed = diffuse + Vec3::splat(spec);
        assert!(
            (full - recomposed).length() < 1e-4,
            "decomposition mismatch: {full} vs {recomposed}"
        );
    }

    #[test]
    fn diffuse_scene_has_no_lobe() {
        let s = one_sphere();
        assert!(s.specular_lobe_at(Vec3::new(0.0, 0.99, 0.0)).is_none());
        assert_eq!(s.dominant_shininess(), 1.0);
    }

    #[test]
    fn nearest_object_wins_shading() {
        let red = Material::solid(Vec3::X);
        let blue = Material::solid(Vec3::Z);
        let s = SceneBuilder::new("two")
            .object(
                Shape::Sphere { radius: 0.5 },
                Vec3::new(-1.0, 0.0, 0.0),
                red,
            )
            .object(
                Shape::Sphere { radius: 0.5 },
                Vec3::new(1.0, 0.0, 0.0),
                blue,
            )
            .build();
        let r_left = s.radiance_at(Vec3::new(-1.0, 0.45, 0.0), Vec3::Z);
        let r_right = s.radiance_at(Vec3::new(1.0, 0.45, 0.0), Vec3::Z);
        assert!(r_left.x > r_left.z);
        assert!(r_right.z > r_right.x);
    }
}
