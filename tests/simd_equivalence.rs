//! The explicit SIMD kernel layer must be **bit-identical** to the scalar
//! paths it replaces — frames, [`RenderStats`], sink sample streams, warped
//! frames and full serve `ServiceReport`s — for every scene, model family
//! and block size. This is the contract that lets the `simd` cargo feature
//! ride the same determinism matrix as `render_threads` and `sample_block`:
//! a pure throughput knob that never moves a pixel.
//!
//! Both paths are compiled into one binary (the wide kernels always build,
//! over the portable backend when the feature is off); which one the hot
//! loops take is the process-wide `cicero_field::simd` switch. Each test
//! here runs its workload with the kernels forced off (the scalar oracle)
//! and forced on, and asserts byte equality. Without `--features simd` the
//! switch is pinned off and both legs run scalar — the suite then degrades
//! to a self-check, and CI additionally diffs digests across separately
//! compiled feature builds.
//!
//! The switch is process-global, so every test serializes on [`lock`]; the
//! per-kernel bitwise tests live next to the kernels (no toggle needed),
//! and the wide path's zero-allocation leg lives in `tests/zero_alloc.rs`
//! (the counting allocator is process-global too).

use std::sync::{Mutex, MutexGuard};

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::sparw::{warp_frame, WarpOptions};
use cicero::Variant;
use cicero_field::render::render_full;
use cicero_field::simd;
use cicero_field::{
    bake, GatherPlan, GridConfig, HashConfig, NerfModel, RenderOptions, TensorConfig,
};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use cicero_scene::ground_truth::render_frame;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, RadianceSource, Trajectory};
use cicero_serve::{FrameServer, QosClass, ServeConfig, ServiceReport, SessionSpec};

const BLOCK_SIZES: [usize; 3] = [1, 16, 64];

/// Serializes tests that flip the process-wide kernel switch.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A poisoned lock only means another equivalence test failed; the
    // switch state is restored by `with_kernels` regardless.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the wide kernels forced on or off, then restores the
/// compiled-in default (on; a no-op without the feature).
fn with_kernels<T>(on: bool, f: impl FnOnce() -> T) -> T {
    simd::set_kernels_enabled(on);
    let out = f();
    simd::set_kernels_enabled(true);
    out
}

fn bench_camera() -> Camera {
    Camera::new(
        // Odd size: lane groups always end in a ragged scalar tail.
        Intrinsics::from_fov(33, 33, 0.9),
        Pose::look_at(Vec3::new(0.3, 1.2, -2.6), Vec3::ZERO, Vec3::Y),
    )
}

fn model_for(scene_name: &str) -> Box<dyn NerfModel> {
    let scene = library::scene_by_name(scene_name).unwrap();
    // One family per scene: dense grid, multi-level hash, VM tensor — each
    // with its own wide gather kernel.
    match scene_name {
        "lego" => Box::new(bake::bake_grid(
            &scene,
            &GridConfig {
                resolution: 24,
                ..Default::default()
            },
        )),
        "chair" => Box::new(bake::bake_hash(
            &scene,
            &HashConfig {
                levels: 4,
                base_resolution: 4,
                max_resolution: 24,
                table_size_log2: 10,
                ..Default::default()
            },
        )),
        _ => Box::new(bake::bake_tensor(
            &scene,
            &TensorConfig {
                resolution: 24,
                ..Default::default()
            },
        )),
    }
}

#[test]
fn wide_render_is_bit_identical_across_scenes_models_and_block_sizes() {
    let _guard = lock();
    for scene_name in ["lego", "chair", "ship"] {
        let model = model_for(scene_name);
        let model = model.as_ref();
        let cam = bench_camera();
        let collect = |block: usize| {
            let opts = RenderOptions {
                sample_block: block,
                ..Default::default()
            };
            let mut events: Vec<(u32, f32, u64, u64)> = Vec::new();
            let mut sink = |ray: u32, t: f32, p: &GatherPlan| {
                events.push((ray, t, p.bytes(), p.entry_reads()))
            };
            let (frame, stats) = render_full(model, &cam, &opts, &mut sink);
            (frame, stats, events)
        };
        for block in BLOCK_SIZES {
            let (frame, stats, events) = with_kernels(false, || collect(block));
            let (w_frame, w_stats, w_events) = with_kernels(true, || collect(block));
            assert!(stats.samples_processed > 0, "{scene_name}: empty render");
            assert_eq!(w_frame, frame, "{scene_name}: frame, block {block}");
            assert_eq!(w_stats, stats, "{scene_name}: stats, block {block}");
            assert_eq!(w_events, events, "{scene_name}: sink stream, block {block}");
        }
    }
}

#[test]
fn wide_warp_passes_are_bit_identical() {
    // The SPARW splat / normalize / void-classify kernels, end to end on a
    // real rendered reference — covers both splat modes and the φ test.
    let _guard = lock();
    let scene = library::scene_by_name("lego").unwrap();
    let k = Intrinsics::from_fov(48, 48, 0.9);
    let ref_cam = Camera::new(
        k,
        Pose::look_at(Vec3::new(0.0, 1.3, -2.8), Vec3::ZERO, Vec3::Y),
    );
    let tgt_cam = Camera::new(
        k,
        Pose::look_at(Vec3::new(0.25, 1.2, -2.7), Vec3::ZERO, Vec3::Y),
    );
    let reference = render_frame(&scene, &ref_cam, &MarchParams::default());
    for opts in [
        WarpOptions::default(),
        WarpOptions {
            splat: cicero::sparw::SplatMode::Bilinear,
            ..Default::default()
        },
        WarpOptions {
            phi: Some(0.02),
            ..Default::default()
        },
    ] {
        let warp = || warp_frame(&reference, &ref_cam, &tgt_cam, scene.background(), &opts);
        let scalar = with_kernels(false, warp);
        let wide = with_kernels(true, warp);
        assert_eq!(wide.frame, scalar.frame, "phi={:?}: frame", opts.phi);
        assert_eq!(wide.status, scalar.status, "phi={:?}: status", opts.phi);
    }
}

#[test]
fn wide_pipeline_runs_are_bit_identical() {
    // Whole pipeline (render + warp + schedule) under SPARW and Cicero:
    // every wide kernel in one pass, with simulated reports compared.
    let _guard = lock();
    for scene_name in ["lego", "ship"] {
        let scene = library::scene_by_name(scene_name).unwrap();
        let model = model_for(scene_name);
        let model = model.as_ref();
        let traj = Trajectory::orbit(&scene, 4, 40.0);
        let k = Intrinsics::from_fov(24, 24, 0.9);
        for variant in [Variant::Sparw, Variant::Cicero] {
            let run = || {
                let cfg = PipelineConfig {
                    variant,
                    window: 3,
                    march: MarchParams {
                        step: 0.05,
                        ..Default::default()
                    },
                    collect_quality: false,
                    collect_traffic: true,
                    ..Default::default()
                };
                run_pipeline(&scene, model, &traj, k, &cfg)
            };
            let scalar = with_kernels(false, run);
            let wide = with_kernels(true, run);
            assert_eq!(
                wide.frames, scalar.frames,
                "{scene_name}/{variant:?}: frames"
            );
            assert_eq!(
                wide.warp_totals, scalar.warp_totals,
                "{scene_name}/{variant:?}: warp stats"
            );
            assert_eq!(wide.outcomes.len(), scalar.outcomes.len());
            for (a, b) in wide.outcomes.iter().zip(&scalar.outcomes) {
                assert_eq!(a.report, b.report, "{scene_name}/{variant:?}: report");
            }
        }
    }
}

#[test]
fn wide_serve_reports_are_bit_identical() {
    // Full service reports — frame records, latency percentiles, cache
    // economics — through the multi-session serve layer.
    let _guard = lock();
    let lego = library::scene_by_name("lego").unwrap();
    let ship = library::scene_by_name("ship").unwrap();
    let models = [model_for("lego"), model_for("ship")];
    let scenes = [&lego, &ship];
    let trajs = [
        Trajectory::orbit(&lego, 6, 30.0),
        Trajectory::orbit(&ship, 6, 30.0),
    ];
    let k = Intrinsics::from_fov(24, 24, 0.9);
    let serve = || -> ServiceReport {
        let mut server = FrameServer::new(ServeConfig {
            render_threads: 2,
            ..Default::default()
        });
        for (i, (qos, scene_ix, offset)) in [
            (QosClass::Interactive, 0, 0.0),
            (QosClass::Standard, 0, 0.004),
            (QosClass::BestEffort, 1, 0.009),
            (QosClass::Standard, 1, 0.006),
        ]
        .into_iter()
        .enumerate()
        {
            let spec = SessionSpec {
                name: format!("s{i}"),
                scene_key: if scene_ix == 0 { "lego" } else { "ship" }.into(),
                qos,
                start_offset_s: offset,
                config: PipelineConfig {
                    variant: Variant::Cicero,
                    window: 4,
                    march: MarchParams {
                        step: 0.05,
                        ..Default::default()
                    },
                    collect_quality: true, // PSNR equality ⇒ frames match too
                    collect_traffic: false,
                    ..Default::default()
                },
            };
            server
                .submit(
                    spec,
                    scenes[scene_ix],
                    models[scene_ix].as_ref(),
                    &trajs[scene_ix],
                    k,
                )
                .unwrap();
        }
        server.run()
    };
    let scalar = with_kernels(false, serve);
    let wide = with_kernels(true, serve);
    assert!(scalar.frames > 0, "empty serve run");
    assert_eq!(wide, scalar, "full service report");
}
