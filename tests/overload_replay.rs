//! Traffic replay and SLO-aware overload control, pinned to the standing
//! determinism matrix. Contracts:
//!
//! (a) the same traffic profile replays to a **bit-identical**
//!     [`ReplayOutcome`] at host thread budgets {0, 1, 4}, shedding and
//!     backpressure included;
//! (b) a disarmed replay (overload `None`) reproduces the plain
//!     `submit`-then-`run` path **byte-for-byte** — the replay harness and
//!     the overload plumbing move nothing when off;
//! (c) an armed server under a flash crowd sheds the predicted-worst SLO
//!     risks and keeps interactive attainment at or above the reject-only
//!     baseline — degrading by choice, not by luck;
//! (d) the queueing edge cases hold: a zero-capacity queue degenerates to
//!     pure backpressure, all-starved streaming sessions flush and drain
//!     once their tickets admit, and a shed spec resubmits cleanly;
//! (e) an armed [`Fleet`] diverts admissions to sibling shards with
//!     headroom before shedding, and its reports ride the same budget
//!     matrix.

use cicero::pipeline::PipelineConfig;
use cicero_field::{bake, GridConfig, GridModel};
use cicero_math::Intrinsics;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, AnalyticScene, Trajectory};
use cicero_serve::{
    run_replay, AdmissionPolicy, ArrivalProcess, Fleet, FleetConfig, FrameServer, OverloadControl,
    OverloadReport, QosClass, ReplayOptions, ReplayOutcome, ServeConfig, SessionSpec,
    SubmitOutcome, TicketState, TrafficAssets, TrafficModel, TrafficProfile,
};

fn grid() -> GridConfig {
    GridConfig {
        resolution: 24,
        ..Default::default()
    }
}

fn small_model(sessions: usize, arrivals: ArrivalProcess) -> TrafficModel {
    TrafficModel {
        sessions,
        duration_s: 0.4,
        arrivals,
        scenes: vec!["lego".into(), "ship".into()],
        zipf_s: 1.0,
        qos_mix: [2.0, 2.0, 1.0],
        streaming_frac: 0.25,
        frames: 5,
        base_fps: 30.0,
        fps_jitter: 0.1,
    }
}

fn armed_cfg(budget: usize, max_sessions: usize) -> ServeConfig {
    ServeConfig {
        render_threads: budget,
        admission: AdmissionPolicy {
            max_sessions,
            ..Default::default()
        },
        overload: Some(OverloadControl::default()),
        ..Default::default()
    }
}

fn replay(profile: &TrafficProfile, assets: &TrafficAssets, cfg: ServeConfig) -> ReplayOutcome {
    run_replay(
        profile,
        assets,
        &ReplayOptions {
            cfg,
            client_seed: profile.seed,
            intrinsics: Intrinsics::from_fov(24, 24, 0.9),
            // PSNR equality ⇒ pixels match too (and keeps summaries NaN-free
            // so report equality is meaningful).
            collect_quality: true,
            ..Default::default()
        },
    )
    .expect("replay absorbs backpressure and rejections")
}

/// (a) Same profile ⇒ bit-identical replay outcome across budgets {0, 1, 4},
/// with the overload machinery genuinely engaged.
#[test]
fn armed_replay_is_bit_identical_across_budgets() {
    let profile = small_model(
        12,
        ArrivalProcess::FlashCrowd {
            at_frac: 0.4,
            width_frac: 0.15,
            crowd_frac: 0.7,
        },
    )
    .generate(42);
    let assets = TrafficAssets::build(&profile, &grid()).unwrap();
    let serial = replay(&profile, &assets, armed_cfg(0, 3));
    assert!(
        serial.report.overload.engaged(),
        "fixture must engage the queue: {:?}",
        serial.report.overload
    );
    assert!(serial.report.frames > 0);
    for budget in [1, 4] {
        let par = replay(&profile, &assets, armed_cfg(budget, 3));
        assert_eq!(par, serial, "budget {budget}: replay outcome drifted");
    }
    // A different profile seed genuinely reschedules the workload.
    let other_profile = small_model(
        12,
        ArrivalProcess::FlashCrowd {
            at_frac: 0.4,
            width_frac: 0.15,
            crowd_frac: 0.7,
        },
    )
    .generate(43);
    let other_assets = TrafficAssets::build(&other_profile, &grid()).unwrap();
    assert_ne!(
        replay(&other_profile, &other_assets, armed_cfg(0, 3)),
        serial
    );
}

/// (b) Disarmed replay of a whole-trajectory profile reproduces the plain
/// `submit`-then-`run` path byte-for-byte.
#[test]
fn disarmed_replay_matches_plain_submission_byte_for_byte() {
    let mut model = small_model(6, ArrivalProcess::Uniform);
    model.streaming_frac = 0.0; // the manual mirror below batch-submits
    let mut profile = model.generate(7);
    // All arrivals at t = 0: the replay then performs every submission
    // before the first service round, exactly like the historical
    // batch-submit-then-run path, so the two reports must agree down to
    // record order. (Staggered arrivals legitimately reorder records — the
    // scheduler can only batch sessions it has been told about.)
    for s in &mut profile.sessions {
        s.start_s = 0.0;
    }
    let assets = TrafficAssets::build(&profile, &grid()).unwrap();
    let opts = ReplayOptions {
        cfg: ServeConfig::default(),
        client_seed: profile.seed,
        intrinsics: Intrinsics::from_fov(24, 24, 0.9),
        collect_quality: true,
        ..Default::default()
    };
    let replayed = run_replay(&profile, &assets, &opts).unwrap();

    // Mirror: bake identical assets, submit every spec in arrival order
    // through the historical path, run to completion.
    let scenes: Vec<(String, AnalyticScene, GridModel)> = {
        let mut s: Vec<(String, AnalyticScene, GridModel)> = Vec::new();
        for sess in &profile.sessions {
            if !s.iter().any(|(n, _, _)| n == &sess.scene) {
                let scene = library::scene_by_name(&sess.scene).unwrap();
                let model = bake::bake_grid(&scene, &grid());
                s.push((sess.scene.clone(), scene, model));
            }
        }
        s
    };
    let trajs: Vec<Trajectory> = profile
        .sessions
        .iter()
        .map(|sess| {
            let (_, scene, _) = scenes.iter().find(|(n, _, _)| n == &sess.scene).unwrap();
            Trajectory::generate(
                scene,
                sess.frames as usize,
                sess.fps,
                match sess.path {
                    cicero_serve::PathKind::Orbit => cicero_scene::TrajectoryKind::Orbit,
                    cicero_serve::PathKind::Handheld => cicero_scene::TrajectoryKind::Handheld,
                    cicero_serve::PathKind::FlyThrough => cicero_scene::TrajectoryKind::FlyThrough,
                },
                sess.path_seed,
            )
        })
        .collect();
    let mut server = FrameServer::new(ServeConfig::default());
    for (i, sess) in profile.sessions.iter().enumerate() {
        let (_, scene, model) = scenes.iter().find(|(n, _, _)| n == &sess.scene).unwrap();
        server
            .submit(
                SessionSpec {
                    name: sess.name.clone(),
                    scene_key: sess.scene.clone(),
                    qos: sess.qos,
                    start_offset_s: sess.start_s,
                    config: PipelineConfig {
                        window: if sess.qos == QosClass::Interactive {
                            4
                        } else {
                            6
                        },
                        march: MarchParams {
                            step: 0.04,
                            ..Default::default()
                        },
                        collect_quality: true,
                        collect_traffic: false,
                        ..Default::default()
                    },
                },
                scene,
                model,
                &trajs[i],
                Intrinsics::from_fov(24, 24, 0.9),
            )
            .unwrap();
    }
    let plain = server.run();
    assert_eq!(
        replayed.report, plain,
        "disarmed replay drifted off the plain path"
    );
    assert_eq!(replayed.report.overload, OverloadReport::default());
    assert_eq!(replayed.client.admitted, profile.sessions.len() as u64);
    assert_eq!(replayed.client.queued + replayed.client.rejected, 0);
}

/// (c) Flash crowd against a saturated server: the armed run sheds, keeps
/// serving, and holds interactive SLO attainment at or above the reject-only
/// baseline.
#[test]
fn flash_crowd_sheds_and_holds_interactive_attainment() {
    let profile = small_model(
        16,
        ArrivalProcess::FlashCrowd {
            at_frac: 0.3,
            width_frac: 0.1,
            crowd_frac: 0.85,
        },
    )
    .generate(11);
    let assets = TrafficAssets::build(&profile, &grid()).unwrap();
    let mut crowd_cfg = armed_cfg(0, 2);
    crowd_cfg.overload = Some(OverloadControl {
        queue_capacity: 6,
        deadline_slack: 2.0, // tight SLO: starved entries shed, not linger
        ..Default::default()
    });
    let armed = replay(&profile, &assets, crowd_cfg);
    let baseline = replay(
        &profile,
        &assets,
        ServeConfig {
            admission: AdmissionPolicy {
                max_sessions: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert!(armed.report.overload.sheds > 0, "crowd must force sheds");
    assert!(
        armed.report.frames > 0,
        "shedding must not collapse service"
    );
    assert!(
        baseline.client.rejected > 0,
        "baseline must actually reject"
    );
    let interactive = QosClass::Interactive.priority() as usize;
    assert!(
        armed.attainment[interactive] >= baseline.attainment[interactive],
        "armed interactive attainment {:.3} fell below reject-only {:.3}",
        armed.attainment[interactive],
        baseline.attainment[interactive]
    );
    // Queueing + brownout admit strictly more client demand than rejection.
    assert!(
        armed.client.admitted + armed.client.queue_admitted > baseline.client.admitted,
        "queue should convert rejections into (possibly degraded) service"
    );
}

/// (d) A zero-capacity queue degenerates to pure backpressure: nothing
/// enqueues, clients see `Overloaded` with retry hints and either land on a
/// retry or abandon.
#[test]
fn zero_capacity_queue_is_pure_backpressure() {
    let profile = small_model(
        10,
        ArrivalProcess::FlashCrowd {
            at_frac: 0.2,
            width_frac: 0.05,
            crowd_frac: 0.9,
        },
    )
    .generate(5);
    let assets = TrafficAssets::build(&profile, &grid()).unwrap();
    let cfg = ServeConfig {
        admission: AdmissionPolicy {
            max_sessions: 2,
            ..Default::default()
        },
        overload: Some(OverloadControl {
            queue_capacity: 0,
            ..Default::default()
        }),
        ..Default::default()
    };
    let out = replay(&profile, &assets, cfg);
    assert_eq!(
        out.report.overload.enqueued, 0,
        "nothing can queue at capacity 0"
    );
    assert!(out.report.overload.backpressure > 0);
    assert!(out.client.backpressured > 0);
    assert!(out.client.retries > 0, "clients honor the retry hint");
    assert_eq!(out.client.queued, 0);
    // Every submission resolved one way or another.
    assert_eq!(
        out.client.admitted + out.client.abandoned + out.client.rejected,
        out.client.submitted
    );
}

/// (d) All-streaming sessions starved behind a one-session server: queued
/// clients buffer poses, flush once their ticket admits, and the stream
/// drains to completion.
#[test]
fn starved_streams_flush_after_queue_admission() {
    let mut model = small_model(5, ArrivalProcess::Uniform);
    model.streaming_frac = 1.0;
    model.duration_s = 0.05; // everyone arrives nearly at once
    let profile = model.generate(9);
    let assets = TrafficAssets::build(&profile, &grid()).unwrap();
    assert!(profile.sessions.iter().all(|s| s.streaming));
    let out = replay(&profile, &assets, armed_cfg(0, 1));
    assert!(
        out.report.overload.enqueued > 0,
        "streams must starve first"
    );
    let admitted_late = out.report.overload.queue_admits + out.report.overload.brownout_admits;
    assert!(admitted_late > 0, "queued streams must eventually admit");
    assert!(out.client.poses_pushed > 0, "buffered poses must flush");
    // Every admitted stream drained frames through the server.
    assert!(out.report.frames > 0);
    for s in &out.report.sessions {
        assert!(s.frames > 0, "admitted stream {} never drained", s.name);
    }
}

/// (d) Shed-then-resubmit: the same [`SessionSpec`] is a valid submission
/// after the server shed it under pressure.
#[test]
fn shed_spec_resubmits_cleanly_once_load_drains() {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(&scene, &grid());
    let traj = Trajectory::orbit(&scene, 5, 30.0);
    let spec = |name: &str| SessionSpec {
        name: name.into(),
        scene_key: "lego".into(),
        qos: QosClass::Standard,
        start_offset_s: 0.0,
        config: PipelineConfig {
            window: 4,
            march: MarchParams {
                step: 0.05,
                ..Default::default()
            },
            collect_quality: false,
            collect_traffic: false,
            ..Default::default()
        },
    };
    let mut server = FrameServer::new(ServeConfig {
        admission: AdmissionPolicy {
            max_sessions: 1,
            ..Default::default()
        },
        overload: Some(OverloadControl {
            deadline_slack: 0.5, // SLO deadline lands almost immediately
            brownout: None,      // no ladder: shed at the deadline
            ..Default::default()
        }),
        ..Default::default()
    });
    let intr = Intrinsics::from_fov(24, 24, 0.9);
    let first = server
        .submit_at(0.0, spec("holder"), &scene, &model, &traj, intr)
        .unwrap();
    assert!(matches!(first, SubmitOutcome::Admitted(_)));
    let queued = server
        .submit_at(0.0, spec("victim"), &scene, &model, &traj, intr)
        .unwrap();
    let SubmitOutcome::Queued(ticket) = queued else {
        panic!("second spec must queue behind max_sessions=1");
    };
    let report = server.run();
    assert_eq!(server.ticket(ticket), Some(TicketState::Shed));
    assert_eq!(report.overload.sheds, 1);
    // Load has drained; the identical spec now admits directly.
    let retry = server
        .submit_at(
            report.makespan_s,
            spec("victim"),
            &scene,
            &model,
            &traj,
            intr,
        )
        .unwrap();
    assert!(
        matches!(retry, SubmitOutcome::Admitted(_)),
        "resubmitted spec must admit on an idle server, got {retry:?}"
    );
    let second = server.run();
    assert!(
        second.frames > report.frames,
        "resubmitted session must serve"
    );
}

/// (e) An armed fleet diverts admissions to a sibling shard with headroom
/// before shedding, and the fleet report stays bit-identical across budgets.
#[test]
fn fleet_diverts_before_shedding_and_stays_deterministic() {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(&scene, &grid());
    let traj = Trajectory::orbit(&scene, 5, 30.0);
    let intr = Intrinsics::from_fov(24, 24, 0.9);
    let run_fleet = |budget: usize| {
        let mut fleet = Fleet::new(FleetConfig {
            shards: 2,
            base: armed_cfg(budget, 1),
            ..Default::default()
        });
        // Same scene ⇒ same primary shard under scene-hash routing; the
        // second admission must divert to the idle sibling instead of
        // queueing behind max_sessions=1.
        for i in 0..2 {
            let outcome = fleet
                .submit_at(
                    0.0,
                    SessionSpec {
                        name: format!("s{i}"),
                        scene_key: "lego".into(),
                        qos: QosClass::Standard,
                        start_offset_s: 0.002 * i as f64,
                        config: PipelineConfig {
                            window: 4,
                            march: MarchParams {
                                step: 0.05,
                                ..Default::default()
                            },
                            collect_quality: true,
                            collect_traffic: false,
                            ..Default::default()
                        },
                    },
                    &scene,
                    &model,
                    &traj,
                    intr,
                )
                .unwrap();
            assert!(
                matches!(outcome, SubmitOutcome::Admitted(_)),
                "session {i} should admit (diverted if needed), got {outcome:?}"
            );
        }
        fleet.run()
    };
    let serial = run_fleet(0);
    assert_eq!(serial.diversions, 1, "second admission must divert");
    let shard_diversions: u64 = serial.shards.iter().map(|s| s.overload.diversions).sum();
    let shard_sheds: u64 = serial.shards.iter().map(|s| s.overload.sheds).sum();
    assert_eq!(
        shard_diversions, 1,
        "the primary shard records the diversion"
    );
    assert_eq!(shard_sheds, 0, "diversion avoids the shed");
    for budget in [1, 4] {
        assert_eq!(run_fleet(budget), serial, "budget {budget}: fleet drifted");
    }
}

/// (b)+(a) Underloaded armed replay differs from disarmed only in the
/// overload accounting block — the queue's presence alone moves no frame.
#[test]
fn idle_overload_control_moves_nothing_but_its_own_accounting() {
    let mut model = small_model(4, ArrivalProcess::Uniform);
    model.streaming_frac = 0.0;
    let profile = model.generate(3);
    let assets = TrafficAssets::build(&profile, &grid()).unwrap();
    let armed = replay(&profile, &assets, armed_cfg(0, 64));
    let disarmed = replay(&profile, &assets, ServeConfig::default());
    assert!(
        !armed.report.overload.engaged(),
        "fixture must stay underloaded"
    );
    let mut armed_scrubbed = armed.clone();
    armed_scrubbed.report.overload = OverloadReport::default();
    let mut disarmed_scrubbed = disarmed.clone();
    disarmed_scrubbed.report.overload = OverloadReport::default();
    assert_eq!(
        armed_scrubbed, disarmed_scrubbed,
        "idle overload control must be invisible outside its report"
    );
}
