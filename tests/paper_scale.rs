//! Paper-scale validation (ROADMAP): the serve layer must reproduce the
//! direct single-client `PipelineSession` numbers when given one session on
//! one worker at the paper's 800×800 resolution — the `fig19` configuration
//! routed through `cicero-serve` instead of the bare pipeline.
//!
//! The heavy test is `#[ignore]`d so the tier-1 debug suite stays fast; CI
//! runs it explicitly in release (`cargo test --release --test paper_scale
//! -- --ignored`).

use cicero::pipeline::{PipelineConfig, PipelineSession};
use cicero::Variant;
use cicero_accel::pool::PoolConfig;
use cicero_field::{bake, GridConfig};
use cicero_math::Intrinsics;
use cicero_scene::{library, Trajectory};
use cicero_serve::{FrameServer, QosClass, ServeConfig, SessionSpec};

#[test]
#[ignore = "paper-scale (800×800): run in release, CI does so explicitly"]
fn serve_layer_reproduces_direct_session_at_800() {
    const RES: usize = 800;
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    // 6 frames at window 2: bootstrap + windows [1,3), [3,5) and [5,6).
    // Window [3,5)'s reference extrapolates from no pose history (it lands
    // exactly on pose 0, which the serve layer resolves from the cache);
    // window [5,6)'s reference is genuinely extrapolated, so the batched
    // off-stream reference path is exercised at paper scale.
    let traj = Trajectory::orbit(&scene, 6, 30.0);
    let k = Intrinsics::from_fov(RES, RES, 0.9);
    let cfg = PipelineConfig {
        variant: Variant::Cicero,
        window: 2,
        collect_quality: true, // PSNR bit-equality is the frame oracle
        collect_traffic: false,
        ..Default::default()
    };

    // Direct single-client run, keeping each step's un-amortized service
    // time (what a scheduler bills a worker with).
    let mut direct = PipelineSession::new(&scene, &model, &traj, k, &cfg);
    let mut service_times = Vec::new();
    let mut full_flags = Vec::new();
    let mut psnrs = Vec::new();
    while let Some(step) = direct.step() {
        service_times.push(step.service_time_s);
        full_flags.push(step.outcome.full_render);
        if let Some(p) = step.outcome.psnr_db {
            psnrs.push(p);
        }
    }
    let direct_psnr = cicero_math::metrics::mean_psnr_db(&psnrs);
    let off_stream_refs = direct
        .schedule()
        .map(|s| s.off_trajectory.iter().filter(|&&o| o).count())
        .unwrap();

    // The same client through the frame server: one session, one worker.
    let mut server = FrameServer::new(ServeConfig {
        pool: PoolConfig {
            workers: 1,
            ..Default::default()
        },
        // A lone 800×800 30 fps client wildly oversubscribes one simulated
        // SoC (that is the paper's point — the baseline cannot keep up);
        // admission control is not under test here, so let it through.
        admission: cicero_serve::AdmissionPolicy {
            max_utilization: 1e9,
            ..Default::default()
        },
        ..Default::default()
    });
    server
        .submit(
            SessionSpec {
                name: "fig19".into(),
                scene_key: "lego".into(),
                qos: QosClass::Standard,
                start_offset_s: 0.0,
                config: cfg.clone(),
            },
            &scene,
            &model,
            &traj,
            k,
        )
        .unwrap();
    let report = server.run();

    assert_eq!(report.frames, traj.len());
    assert_eq!(report.sessions[0].frames, traj.len());
    // Bit-for-bit frame equality, via per-pixel quality: the session's
    // MSE-averaged PSNR is computed from the served pixels, so any deviation
    // in any frame would move it.
    assert_eq!(
        report.sessions[0].mean_psnr_db, direct_psnr,
        "served frames deviate from the direct pipeline"
    );
    // Same plan shape: which frames full-render, and how many references
    // went through the batched off-stream path.
    for (r, &full) in report.records.iter().zip(&full_flags) {
        assert_eq!(r.full_render, full, "frame {}", r.frame_index);
        assert_eq!(r.worker, 0, "one worker serves everything");
    }
    // Every off-stream reference came from the pool batch or the cache
    // (a degenerate extrapolation re-lands on an already-rendered pose —
    // the hit installs the identical pixels, so frame equality above still
    // proves the serve layer changed nothing).
    assert!(report.reference_jobs >= 1, "batched path never exercised");
    assert_eq!(
        report.reference_jobs + report.sessions[0].cache_hits,
        off_stream_refs as u64
    );
    // Worker occupancy per frame equals the direct step's un-amortized
    // service time, priced on the identical default SoC. The span bounds
    // come from one f64 add in the scheduler, so allow one rounding step.
    for (r, &t) in report.records.iter().zip(&service_times) {
        let billed = r.completion_s - r.start_s;
        assert!(
            (billed - t).abs() <= 1e-12 * t.max(1.0),
            "frame {}: billed {billed} vs direct service time {t}",
            r.frame_index
        );
    }
    // Single client on its own worker never misses the standard deadline at
    // these service times... unless the model regresses catastrophically;
    // keep the timeline sane rather than assert a specific figure.
    assert!(report.makespan_s > 0.0);
    assert!(report.p99_latency_s >= report.p50_latency_s);
}
