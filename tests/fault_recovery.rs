//! Chaos must be as reproducible as everything else: a seeded [`FaultPlan`]
//! is part of the workload, so the standing serve invariant — bit-identical
//! [`ServiceReport`]s at any host thread budget — extends to runs where
//! workers crash, caches corrupt and pose streams stall. Four contracts:
//!
//! (a) the same fault seed produces the **same full report** (records,
//!     latencies, cache stats, fault accounting) across budgets {0, 1, 4};
//! (b) an armed plan whose rates are all zero is **byte-identical** to an
//!     un-armed server — the injector's presence alone moves nothing;
//! (c) the recovery ladder's stale-warp rung only ever falls back to
//!     references within the policy's pose-error radius, and the resulting
//!     frames keep a sane PSNR — Cicero's warping math is the recovery
//!     primitive, not a quality cliff;
//! (d) streaming sessions survive injected pose stalls and drops, drain
//!     incrementally, and reproduce bit-for-bit when the feed is repeated.

use cicero::pipeline::PipelineConfig;
use cicero::Variant;
use cicero_field::{bake, GridConfig, GridModel};
use cicero_math::{Intrinsics, Pose, Vec3};
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, AnalyticScene, Trajectory};
use cicero_serve::{
    FaultPlan, FaultReport, FrameServer, QosClass, RetryWithBackoff, ServeConfig, ServiceReport,
    SessionSpec,
};

fn assets(name: &str, frames: usize) -> (AnalyticScene, GridModel, Trajectory) {
    let scene = library::scene_by_name(name).unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 24,
            ..Default::default()
        },
    );
    let traj = Trajectory::orbit(&scene, frames, 30.0);
    (scene, model, traj)
}

fn cfg() -> PipelineConfig {
    PipelineConfig {
        variant: Variant::Cicero,
        window: 4,
        march: MarchParams {
            step: 0.05,
            ..Default::default()
        },
        collect_quality: true, // PSNR equality ⇒ frames match too
        collect_traffic: false,
        ..Default::default()
    }
}

fn spec(name: &str, qos: QosClass, offset: f64) -> SessionSpec {
    SessionSpec {
        name: name.into(),
        scene_key: "lego".into(),
        qos,
        start_offset_s: offset,
        config: cfg(),
    }
}

/// A mixed fleet — four whole-trajectory sessions across two scenes plus one
/// streamed session fed pose-by-pose — served under `faults` at `budget`.
fn serve_fleet(faults: Option<FaultPlan>, budget: usize) -> ServiceReport {
    let (lego, lego_model, lego_traj) = assets("lego", 8);
    let (ship, ship_model, ship_traj) = assets("ship", 8);
    let mut server = FrameServer::new(ServeConfig {
        render_threads: budget,
        faults,
        ..Default::default()
    });
    for (i, (qos, on_lego, offset)) in [
        (QosClass::Interactive, true, 0.0),
        (QosClass::Standard, true, 0.004),
        (QosClass::Standard, false, 0.006),
        (QosClass::BestEffort, false, 0.013),
    ]
    .into_iter()
    .enumerate()
    {
        let mut spec = spec(&format!("s{i}"), qos, offset);
        let (scene, model, traj) = if on_lego {
            (&lego, &lego_model, &lego_traj)
        } else {
            spec.scene_key = "ship".into();
            (&ship, &ship_model, &ship_traj)
        };
        server
            .submit(spec, scene, model, traj, Intrinsics::from_fov(24, 24, 0.9))
            .unwrap();
    }
    let id = server
        .submit_stream(
            spec("stream", QosClass::Standard, 0.009),
            &lego,
            &lego_model,
            lego_traj.fps(),
            Intrinsics::from_fov(24, 24, 0.9),
        )
        .unwrap();
    for pose in lego_traj.poses() {
        server.push_pose(id, *pose).unwrap();
    }
    server.close_stream(id).unwrap();
    server.run()
}

/// (a) Same fault seed ⇒ bit-identical full service report — fault
/// accounting included — across host thread budgets {0, 1, 4}.
#[test]
fn faulted_reports_are_bit_identical_across_budgets() {
    let plan = FaultPlan::with_rate(42, 0.1);
    let serial = serve_fleet(Some(plan), 0);
    assert!(
        serial.faults.injected() > 0,
        "fixture must actually inject faults"
    );
    assert!(
        serial.faults.recoveries() > 0,
        "fixture must actually recover"
    );
    assert!(serial.frames > 0);
    for budget in [1, 4] {
        let par = serve_fleet(Some(plan), budget);
        assert_eq!(par, serial, "budget {budget}: chaos run drifted");
    }
    // And a different seed genuinely reschedules the chaos.
    let other = serve_fleet(Some(FaultPlan::with_rate(43, 0.1)), 0);
    assert_ne!(
        (
            serial.faults.worker_crashes,
            serial.faults.stragglers,
            serial.faults.cache_corruptions,
            serial.faults.pose_stalls,
            serial.faults.pose_drops,
        ),
        (
            other.faults.worker_crashes,
            other.faults.stragglers,
            other.faults.cache_corruptions,
            other.faults.pose_stalls,
            other.faults.pose_drops,
        ),
        "different seeds must inject different schedules"
    );
}

/// (b) An armed zero-rate plan serves **byte-identically** to an un-armed
/// server: the injector's plumbing alone must not move a bit, and its
/// report must be exactly the default.
#[test]
fn zero_fault_plan_matches_unarmed_server_byte_for_byte() {
    for budget in [0usize, 4] {
        let unarmed = serve_fleet(None, budget);
        let armed = serve_fleet(Some(FaultPlan::zero(42)), budget);
        assert_eq!(armed, unarmed, "budget {budget}: zero-rate plan drifted");
        assert_eq!(armed.faults, FaultReport::default());
        assert_eq!(armed.faults.availability, 1.0);
    }
}

/// (c) The stale-warp rung: a session whose fresh renders always crash falls
/// back to cached references a co-located session planted nearby. Every
/// fallback must stay within the recovery policy's pose-error radius and the
/// recovered frames keep a usable PSNR.
#[test]
fn fallback_warps_stay_within_radius_and_psnr_floor() {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 24,
            ..Default::default()
        },
    );
    let k = Intrinsics::from_fov(24, 24, 0.9);
    // Only crashes, always: every demand render attempt dies, so off-stream
    // references exhaust their retries and take rung two (stale warp)
    // whenever the cache holds anything in radius, rung three (degraded
    // re-render) otherwise.
    let mut plan = FaultPlan::zero(9);
    plan.crash_rate = 1.0;

    // A brisk lateral dolly: 0.1 world units per frame means the
    // velocity-extrapolated off-stream references (window 4, horizon 6)
    // land ~1.0 away from the bootstrap — far outside the recovery
    // policy's 0.75 stale radius, so the planter's crashed references
    // must take rung three, planting cache entries at the extrapolated
    // poses. The faller walks the same dolly shifted 0.08 in x: past the
    // cache's 0.05 position quantum (its demand lookups miss) but well
    // inside the stale radius of the planter's entries, so its crashed
    // references recover via rung two at pose error ≈ 0.08.
    let dolly = |shift: f32| {
        Trajectory::from_poses(
            (0..16)
                .map(|i| {
                    Pose::look_at(
                        Vec3::new(-0.8 + 0.1 * i as f32 + shift, 1.2, -2.6),
                        Vec3::ZERO,
                        Vec3::Y,
                    )
                })
                .collect::<Vec<Pose>>(),
            30.0,
        )
    };
    let traj = dolly(0.0);
    let shifted = dolly(0.08);
    let mut server = FrameServer::new(ServeConfig {
        faults: Some(plan),
        ..Default::default()
    });
    server
        .submit(
            spec("planter", QosClass::Standard, 0.0),
            &scene,
            &model,
            &traj,
            k,
        )
        .unwrap();
    server
        .submit(
            spec("faller", QosClass::Standard, 0.004),
            &scene,
            &model,
            &shifted,
            k,
        )
        .unwrap();
    let report = server.run();

    assert!(
        report.faults.degraded_rerenders >= 1,
        "the planter's empty-cache crashes must take rung three"
    );
    assert!(
        report.faults.fallback_warps >= 1,
        "the shifted session must recover at least one reference via rung two"
    );
    assert_eq!(
        report.faults.fallbacks.len() as u64,
        report.faults.fallback_warps
    );
    let policy = RetryWithBackoff::default();
    for fb in &report.faults.fallbacks {
        assert!(
            fb.pos_error <= policy.stale_pos_radius,
            "fallback {fb:?} outside the position radius"
        );
        assert!(
            fb.rot_error <= policy.stale_rot_radius,
            "fallback {fb:?} outside the rotation radius"
        );
    }
    // The recovered session still produces usable frames: warping from a
    // reference 0.08 away degrades quality, it must not destroy it.
    let faller = &report.sessions[1];
    assert_eq!(faller.frames, traj.len());
    assert!(
        faller.mean_psnr_db.is_finite() && faller.mean_psnr_db > 12.0,
        "fallback-warped session PSNR collapsed: {} dB",
        faller.mean_psnr_db
    );
    // And the chaos run stays budget-deterministic even at rate 1.
    let rerun = || {
        let mut server = FrameServer::new(ServeConfig {
            render_threads: 4,
            faults: Some(plan),
            ..Default::default()
        });
        server
            .submit(
                spec("planter", QosClass::Standard, 0.0),
                &scene,
                &model,
                &traj,
                k,
            )
            .unwrap();
        server
            .submit(
                spec("faller", QosClass::Standard, 0.004),
                &scene,
                &model,
                &shifted,
                k,
            )
            .unwrap();
        server.run()
    };
    assert_eq!(rerun(), report, "rate-1 chaos drifted across budgets");
}

/// (d) Streaming under chaos: injected stalls shift arrivals, injected drops
/// shrink the session, and the interleaved push/run schedule both drains
/// every delivered pose exactly once and reproduces bit-for-bit.
#[test]
fn streaming_sessions_survive_stalls_and_resume_bit_identically() {
    let (scene, model, traj) = assets("lego", 10);
    let k = Intrinsics::from_fov(24, 24, 0.9);
    // Stall-heavy mix with occasional drops; no worker faults, so every
    // difference from a fault-free run is ingest-side.
    let mut plan = FaultPlan::zero(11);
    plan.stall_rate = 0.5;
    plan.stall_s = 0.05;
    plan.drop_rate = 0.15;

    let run_once = |budget: usize| {
        let mut server = FrameServer::new(ServeConfig {
            render_threads: budget,
            faults: Some(plan),
            ..Default::default()
        });
        let id = server
            .submit_stream(
                spec("chaotic", QosClass::Standard, 0.0),
                &scene,
                &model,
                traj.fps(),
                k,
            )
            .unwrap();
        // Uneven chunks with a drain between each: the session must keep
        // making progress around the stalls, not just after the close.
        let mut drained = Vec::new();
        for chunk in [&traj.poses()[0..3], &traj.poses()[3..7], &traj.poses()[7..]] {
            for pose in chunk {
                server.push_pose(id, *pose).unwrap();
            }
            drained.push(server.run().frames);
        }
        server.close_stream(id).unwrap();
        (drained, server.run())
    };

    let (drained, report) = run_once(0);
    assert!(
        report.faults.pose_stalls > 0,
        "fixture must actually stall poses"
    );
    assert!(
        report.faults.pose_drops > 0,
        "fixture must actually drop poses"
    );
    // Every delivered pose is served exactly once; dropped poses shrink the
    // session instead of wedging it.
    assert_eq!(
        report.frames as u64 + report.faults.pose_drops,
        traj.len() as u64,
        "drops and served frames must partition the feed"
    );
    assert!(
        drained[2] > drained[0],
        "stalled stream stopped draining mid-feed"
    );
    for (i, r) in report.records.iter().enumerate() {
        assert_eq!(r.frame_index, i, "frame served out of order after drops");
    }

    // Bit-identical on repeat, and across host budgets.
    for budget in [0usize, 1, 4] {
        let (drained2, report2) = run_once(budget);
        assert_eq!(drained2, drained, "budget {budget}: drain schedule drifted");
        assert_eq!(report2, report, "budget {budget}: chaos stream drifted");
    }
}
