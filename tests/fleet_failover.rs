//! Fleet fault domains and failover determinism. Four contracts:
//!
//! (a) a fleet of one shard with zero shard faults is **byte-identical** to a
//!     bare [`FrameServer`] — the fleet layer's presence alone moves
//!     nothing, armed or not;
//! (b) a mid-run [`ShardCrash`](cicero_serve::FaultKind::ShardCrash) drains
//!     the dead shard's live sessions onto survivors and the migrated
//!     session's frames are **bit-identical** to a fault-free run — failover
//!     changes *when* frames serve, never their pixels;
//! (c) the whole [`FleetReport`](cicero_serve::FleetReport) — per-shard
//!     reports, migrations, availability — reproduces bit-for-bit across
//!     host thread budgets {0, 1, 4};
//! (d) a shard that dies with no survivor loses its live sessions: their
//!     unserved frames count against availability and touching them surfaces
//!     [`ServeError::SessionLost`](cicero_serve::ServeError), not a panic.

use cicero::pipeline::PipelineConfig;
use cicero::Variant;
use cicero_field::{bake, GridConfig, GridModel};
use cicero_math::{Intrinsics, Pose, Vec3};
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, AnalyticScene, Trajectory};
use cicero_serve::{
    FaultKind, FaultPlan, Fleet, FleetConfig, FleetReport, FrameServer, QosClass, ServeConfig,
    ServeError, SessionSpec, SessionSummary, ShardCandidate, ShardRoutingPolicy,
};
use std::sync::Arc;

fn assets(name: &str, frames: usize) -> (AnalyticScene, GridModel, Trajectory) {
    let scene = library::scene_by_name(name).unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 24,
            ..Default::default()
        },
    );
    let traj = Trajectory::orbit(&scene, frames, 30.0);
    (scene, model, traj)
}

fn cfg() -> PipelineConfig {
    PipelineConfig {
        variant: Variant::Cicero,
        window: 4,
        march: MarchParams {
            step: 0.05,
            ..Default::default()
        },
        collect_quality: true, // PSNR equality ⇒ frames match too
        collect_traffic: false,
        ..Default::default()
    }
}

fn spec(name: &str, scene_key: &str, qos: QosClass, offset: f64) -> SessionSpec {
    SessionSpec {
        name: name.into(),
        scene_key: scene_key.into(),
        qos,
        start_offset_s: offset,
        config: cfg(),
    }
}

/// First heartbeat index at which `threshold` consecutive misses declare
/// `shard` dead under `plan`, scanning `horizon` beats — the same consecutive
/// logic the fleet's health model runs, usable to pre-scan seeds.
fn shard_death_beat(plan: &FaultPlan, shard: u64, horizon: u64, threshold: u32) -> Option<u64> {
    let mut misses = 0u32;
    for k in 0..horizon {
        if plan.fires(FaultKind::ShardCrash, shard, k, 0) {
            misses += 1;
            if misses >= threshold {
                return Some(k);
            }
        } else {
            misses = 0;
        }
    }
    None
}

/// (a) Fleet of one, zero shard faults ⇒ byte-for-byte a bare server, both
/// un-armed and with an armed zero-rate plan.
#[test]
fn fleet_of_one_is_byte_identical_to_bare_server() {
    let (lego, lego_model, lego_traj) = assets("lego", 8);
    let (ship, ship_model, ship_traj) = assets("ship", 8);
    let submissions = [
        ("a", "lego", QosClass::Interactive, 0.0),
        ("b", "lego", QosClass::Standard, 0.004),
        ("c", "ship", QosClass::Standard, 0.006),
        ("d", "ship", QosClass::BestEffort, 0.013),
    ];
    for faults in [None, Some(FaultPlan::zero(42))] {
        let serve_cfg = ServeConfig {
            faults,
            ..Default::default()
        };
        let mut bare = FrameServer::new(serve_cfg.clone());
        let mut fleet = Fleet::new(FleetConfig {
            shards: 1,
            base: serve_cfg,
            ..Default::default()
        });
        for (name, scene_key, qos, offset) in submissions {
            let s = spec(name, scene_key, qos, offset);
            let (scene, model, traj) = if scene_key == "lego" {
                (&lego, &lego_model, &lego_traj)
            } else {
                (&ship, &ship_model, &ship_traj)
            };
            let k = Intrinsics::from_fov(24, 24, 0.9);
            bare.submit(s.clone(), scene, model, traj, k).unwrap();
            fleet.submit(s, scene, model, traj, k).unwrap();
        }
        // A streamed session fed pose-by-pose through both front doors.
        let k = Intrinsics::from_fov(24, 24, 0.9);
        let s = spec("stream", "lego", QosClass::Standard, 0.009);
        let bare_id = bare
            .submit_stream(s.clone(), &lego, &lego_model, lego_traj.fps(), k)
            .unwrap();
        let fleet_id = fleet
            .submit_stream(s, &lego, &lego_model, lego_traj.fps(), k)
            .unwrap();
        for pose in lego_traj.poses() {
            bare.push_pose(bare_id, *pose).unwrap();
            fleet.push_pose(fleet_id, *pose).unwrap();
        }
        bare.close_stream(bare_id).unwrap();
        fleet.close_stream(fleet_id).unwrap();
        let oracle = bare.run();
        let report = fleet.run();
        assert_eq!(
            report.shards[0],
            oracle,
            "armed={}: fleet of one drifted from the bare server",
            faults.is_some()
        );
        assert_eq!(report.frames, oracle.frames);
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.shard_crashes, 0);
        assert!(report.migrations.is_empty());
        assert_eq!(report.alive_shards, 1);
    }
}

/// Pins admissions by scene so the failover fixture controls which shard
/// hosts the victim: lego → shard 0, everything else → shard 1. Failover
/// keeps the default warmth-then-load rule.
#[derive(Debug)]
struct PinByScene;

impl ShardRoutingPolicy for PinByScene {
    fn admit(&self, scene_key: &str, candidates: &[ShardCandidate]) -> usize {
        let want = if scene_key == "lego" { 0 } else { 1 };
        candidates
            .iter()
            .map(|c| c.shard)
            .find(|&s| s == want)
            .unwrap_or(candidates[0].shard)
    }
}

/// A seed whose base plan kills shard 0 early (death beat 1..=5, i.e. within
/// the first ~0.3 s at a 0.05 s heartbeat) while shard 1 outlives the whole
/// run. Pure hashing — the scan costs microseconds.
fn crash_seed(rate: f64) -> u64 {
    (0..20_000u64)
        .find(|&seed| {
            let mut plan = FaultPlan::zero(seed);
            plan.shard_crash_rate = rate;
            matches!(shard_death_beat(&plan, 0, 24, 1), Some(k) if (1..=5).contains(&k))
                && shard_death_beat(&plan, 1, 24, 1).is_none()
        })
        .expect("some seed kills shard 0 early and spares shard 1")
}

/// A lateral dolly that never revisits a pose cell: 0.1 world units per
/// frame is past the reference cache's 0.05 position quantum, and — unlike
/// a closing orbit — its extrapolated references can never wrap back into
/// the start pose's cell and score a self-hit. The failover fixture needs
/// the victim's hit count pinned at zero so PSNR equality proves pixel
/// equality.
fn dolly(frames: usize) -> Trajectory {
    Trajectory::from_poses(
        (0..frames)
            .map(|i| {
                Pose::look_at(
                    Vec3::new(-0.8 + 0.1 * i as f32, 1.2, -2.6),
                    Vec3::ZERO,
                    Vec3::Y,
                )
            })
            .collect::<Vec<Pose>>(),
        30.0,
    )
}

/// The failover fixture: two shards, the victim session isolated in its own
/// scene on shard 0, a longer-lived bystander on shard 1, and a plan that
/// deterministically kills shard 0 mid-run.
fn failover_fixture(faults: Option<FaultPlan>, budget: usize) -> FleetReport {
    let (lego, lego_model, _) = assets("lego", 12);
    let lego_traj = dolly(12);
    let (ship, ship_model, ship_traj) = assets("ship", 16);
    let mut fleet = Fleet::new(FleetConfig {
        shards: 2,
        base: ServeConfig {
            render_threads: budget,
            faults,
            ..Default::default()
        },
        routing: Arc::new(PinByScene),
        heartbeat_interval_s: 0.05,
        miss_threshold: 1,
    });
    let k = Intrinsics::from_fov(24, 24, 0.9);
    fleet
        .submit(
            spec("victim", "lego", QosClass::Standard, 0.0),
            &lego,
            &lego_model,
            &lego_traj,
            k,
        )
        .unwrap();
    fleet
        .submit(
            spec("bystander", "ship", QosClass::Standard, 0.004),
            &ship,
            &ship_model,
            &ship_traj,
            k,
        )
        .unwrap();
    fleet.run()
}

fn find_session<'r>(report: &'r FleetReport, name: &str) -> &'r SessionSummary {
    report
        .shards
        .iter()
        .flat_map(|s| s.sessions.iter())
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("session {name} has a summary somewhere"))
}

/// (b) + (c): the killed shard's session resumes on the survivor with
/// bit-identical frames, and the whole fleet report reproduces across
/// budgets.
#[test]
fn shard_crash_migrates_sessions_bit_identically() {
    let mut plan = FaultPlan::zero(crash_seed(0.1));
    plan.shard_crash_rate = 0.1;

    let chaotic = failover_fixture(Some(plan), 0);
    assert_eq!(
        chaotic.shard_crashes, 1,
        "fixture must kill exactly shard 0"
    );
    assert_eq!(chaotic.alive_shards, 1);
    assert_eq!(
        chaotic.lost_sessions, 0,
        "a survivor existed — nothing lost"
    );
    let migration = chaotic
        .migrations
        .iter()
        .find(|m| m.name == "victim")
        .expect("the victim must migrate");
    assert_eq!(migration.from_shard, 0);
    assert_eq!(migration.to_shard, 1);
    assert!(migration.at_s > 0.0);
    assert!(
        migration.time_to_resume_s >= 0.0,
        "the victim must actually resume on the survivor: {migration:?}"
    );
    assert_eq!(
        migration.resumed_s,
        migration.at_s + migration.time_to_resume_s
    );

    // Bit-identical frames: the victim is alone in its scene, so any cache
    // hit is a *self*-hit installing its own rendered frame — equal hit
    // counts mean both runs resolved every warp source identically, and
    // equal PSNR ledgers then mean equal pixels, frame by frame. Latencies
    // may legitimately differ (migration delays service); pixels must not.
    let oracle = failover_fixture(None, 0);
    let migrated = find_session(&chaotic, "victim");
    let unmigrated = find_session(&oracle, "victim");
    assert_eq!(
        migrated.frames, 12,
        "every victim frame served post-failover"
    );
    assert_eq!(migrated.frames, unmigrated.frames);
    assert_eq!(migrated.cache_hits, unmigrated.cache_hits);
    assert_eq!(
        migrated.mean_psnr_db, unmigrated.mean_psnr_db,
        "migration changed the victim's pixels"
    );
    // The migrated summary lives on the survivor; the dead shard keeps only
    // the frames it served before dying.
    assert!(chaotic.shards[1]
        .sessions
        .iter()
        .any(|s| s.name == "victim"));
    assert!(!chaotic.shards[0]
        .sessions
        .iter()
        .any(|s| s.name == "victim"));
    assert!(chaotic.shards[0].frames < oracle.shards[0].frames);

    // (c) The whole report — records, migrations, availability — is
    // bit-identical at any host thread budget.
    for budget in [1usize, 4] {
        let par = failover_fixture(Some(plan), budget);
        assert_eq!(par, chaotic, "budget {budget}: failover run drifted");
    }
}

/// (d) No survivor: the shard's live sessions are lost, their unserved
/// frames dent availability, and touching them errors instead of panicking.
#[test]
fn last_shard_death_loses_sessions_without_panicking() {
    let seed = (0..20_000u64)
        .find(|&s| {
            let mut plan = FaultPlan::zero(s);
            plan.shard_crash_rate = 0.1;
            matches!(shard_death_beat(&plan, 0, 24, 1), Some(k) if (1..=4).contains(&k))
        })
        .expect("some seed kills shard 0 early");
    let mut plan = FaultPlan::zero(seed);
    plan.shard_crash_rate = 0.1;

    let (lego, lego_model, lego_traj) = assets("lego", 12);
    let mut fleet = Fleet::new(FleetConfig {
        shards: 1,
        base: ServeConfig {
            faults: Some(plan),
            ..Default::default()
        },
        heartbeat_interval_s: 0.05,
        miss_threshold: 1,
        ..Default::default()
    });
    let k = Intrinsics::from_fov(24, 24, 0.9);
    let id = fleet
        .submit(
            spec("doomed", "lego", QosClass::Standard, 0.0),
            &lego,
            &lego_model,
            &lego_traj,
            k,
        )
        .unwrap();
    let report = fleet.run();
    assert_eq!(report.shard_crashes, 1);
    assert_eq!(report.alive_shards, 0);
    assert_eq!(report.lost_sessions, 1);
    assert!(report.lost_frames > 0, "the doomed session had frames left");
    assert!(
        report.availability < 1.0,
        "lost frames must dent availability: {}",
        report.availability
    );
    assert!(report.migrations.is_empty(), "nothing could adopt");
    // The session's early frames still served and still summarize.
    assert!(report.shards[0].frames < lego_traj.len());
    assert_eq!(report.frames, report.shards[0].frames);
    // Touching the lost session errors; new admissions find no shard.
    assert!(matches!(
        fleet.push_pose(id, lego_traj.poses()[0]),
        Err(ServeError::SessionLost { id: e }) if e == id
    ));
    assert!(matches!(
        fleet.submit(
            spec("late", "lego", QosClass::Standard, 1.0),
            &lego,
            &lego_model,
            &lego_traj,
            k
        ),
        Err(ServeError::FleetDown)
    ));
}
