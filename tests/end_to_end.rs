//! End-to-end integration: scene → baked model → pipeline → images + reports,
//! across model families and variants.

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::Variant;
use cicero_field::{bake, GridConfig, HashConfig, ModelKind, NerfModel, TensorConfig};
use cicero_math::Intrinsics;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, Trajectory};

fn fast_cfg(variant: Variant) -> PipelineConfig {
    let mut cfg = PipelineConfig {
        variant,
        window: 4,
        march: MarchParams {
            step: 0.02,
            ..Default::default()
        },
        ..Default::default()
    };
    cfg.soc.gpu.kernel_overhead_s = 0.0;
    cfg
}

fn small_model(kind: ModelKind) -> (cicero_scene::AnalyticScene, Box<dyn NerfModel>) {
    let scene = library::scene_by_name("mic").unwrap();
    let opts = bake::BakeOptions {
        decoder_hidden: 16,
        ..Default::default()
    };
    let model: Box<dyn NerfModel> = match kind {
        ModelKind::Grid => Box::new(bake::bake_grid_with(
            &scene,
            &GridConfig {
                resolution: 32,
                ..Default::default()
            },
            &opts,
        )),
        ModelKind::Hash => Box::new(bake::bake_hash_with(
            &scene,
            &HashConfig {
                levels: 4,
                base_resolution: 8,
                max_resolution: 48,
                table_size_log2: 13,
                ..Default::default()
            },
            &opts,
        )),
        ModelKind::Tensor => Box::new(bake::bake_tensor_with(
            &scene,
            &TensorConfig {
                resolution: 32,
                components_per_signal: 2,
                bytes_per_value: 2,
            },
            &opts,
        )),
    };
    (scene, model)
}

#[test]
fn every_model_family_runs_the_full_cicero_pipeline() {
    for kind in ModelKind::ALL {
        let (scene, model) = small_model(kind);
        let traj = Trajectory::orbit(&scene, 5, 30.0);
        let k = Intrinsics::from_fov(32, 32, 0.9);
        let run = run_pipeline(&scene, model.as_ref(), &traj, k, &fast_cfg(Variant::Cicero));
        assert_eq!(run.outcomes.len(), 5, "{kind:?}");
        assert_eq!(run.frames.len(), 5);
        assert!(run.mean_frame_time() > 0.0, "{kind:?}");
        assert!(run.mean_psnr().is_finite(), "{kind:?}");
        // Frame 0 is the bootstrap full render, the rest warp.
        assert!(run.outcomes[0].full_render);
        assert!(run.outcomes[1..].iter().all(|o| !o.full_render));
    }
}

#[test]
fn all_variants_beat_or_match_baseline_quality_shape() {
    let (scene, model) = small_model(ModelKind::Grid);
    let traj = Trajectory::orbit(&scene, 6, 30.0);
    let k = Intrinsics::from_fov(40, 40, 0.9);
    let base = run_pipeline(
        &scene,
        model.as_ref(),
        &traj,
        k,
        &fast_cfg(Variant::Baseline),
    );
    for variant in [Variant::Sparw, Variant::SparwFs, Variant::Cicero] {
        let run = run_pipeline(&scene, model.as_ref(), &traj, k, &fast_cfg(variant));
        assert!(
            run.mean_frame_time() < base.mean_frame_time(),
            "{variant:?} should be faster than baseline"
        );
        assert!(
            run.mean_psnr() > base.mean_psnr() - 8.0,
            "{variant:?} quality collapsed: {:.1} vs {:.1}",
            run.mean_psnr(),
            base.mean_psnr()
        );
    }
}

#[test]
fn sparw_and_cicero_agree_on_images() {
    // SPARW / SPARW+FS / Cicero differ only in memory order and hardware;
    // their rendered frames must be bitwise identical.
    let (scene, model) = small_model(ModelKind::Grid);
    let traj = Trajectory::orbit(&scene, 4, 30.0);
    let k = Intrinsics::from_fov(32, 32, 0.9);
    let a = run_pipeline(&scene, model.as_ref(), &traj, k, &fast_cfg(Variant::Sparw));
    let b = run_pipeline(&scene, model.as_ref(), &traj, k, &fast_cfg(Variant::Cicero));
    for (fa, fb) in a.frames.iter().zip(&b.frames) {
        let psnr = cicero_math::metrics::psnr(&fa.color, &fb.color);
        assert!(psnr.is_infinite(), "variants diverged: {psnr:.1} dB");
    }
}

#[test]
fn window_size_trades_speed_for_quality() {
    let (scene, model) = small_model(ModelKind::Grid);
    let traj = Trajectory::orbit(&scene, 13, 10.0); // faster motion: quality visibly decays
    let k = Intrinsics::from_fov(40, 40, 0.9);
    let mut cfg4 = fast_cfg(Variant::Cicero);
    cfg4.window = 4;
    let mut cfg12 = fast_cfg(Variant::Cicero);
    cfg12.window = 12;
    let w4 = run_pipeline(&scene, model.as_ref(), &traj, k, &cfg4);
    let w12 = run_pipeline(&scene, model.as_ref(), &traj, k, &cfg12);
    assert!(
        w12.mean_frame_time() < w4.mean_frame_time(),
        "larger window amortizes more"
    );
    assert!(
        w12.mean_psnr() <= w4.mean_psnr() + 0.5,
        "larger window shouldn't look better: {:.2} vs {:.2}",
        w12.mean_psnr(),
        w4.mean_psnr()
    );
}
