//! The incremental [`PipelineSession`] API must be observationally identical
//! to the monolithic [`run_pipeline`] driver: stepping a fresh session to
//! completion yields the same `FrameOutcome` stream, the same frames and the
//! same aggregate statistics, for every variant × scenario combination.

use cicero::pipeline::{run_pipeline, PipelineConfig, PipelineSession};
use cicero::schedule::RefPlacement;
use cicero::{Scenario, Variant};
use cicero_field::{bake, GridConfig};
use cicero_math::Intrinsics;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, Trajectory};
use proptest::prelude::*;

fn cfg(
    variant: Variant,
    scenario: Scenario,
    window: usize,
    placement: RefPlacement,
) -> PipelineConfig {
    PipelineConfig {
        variant,
        scenario,
        window,
        ref_placement: placement,
        march: MarchParams {
            step: 0.05,
            ..Default::default()
        },
        collect_quality: true,
        collect_traffic: false,
        ..Default::default()
    }
}

/// Bitwise comparison: both paths run the identical computation, so even the
/// floating-point reports must agree exactly.
fn assert_equivalent(cfg: &PipelineConfig, frames: usize, res: usize) {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 24,
            ..Default::default()
        },
    );
    let traj = Trajectory::orbit(&scene, frames, 30.0);
    let k = Intrinsics::from_fov(res, res, 0.9);

    let run = run_pipeline(&scene, &model, &traj, k, cfg);

    let mut session = PipelineSession::new(&scene, &model, &traj, k, cfg);
    let mut stepped = Vec::new();
    let mut step_frames = Vec::new();
    while let Some(step) = session.step() {
        assert!(step.service_time_s > 0.0);
        stepped.push(step.outcome);
        step_frames.push(step.frame);
    }
    assert!(session.is_done());
    assert!(session.step().is_none(), "stepping past the end stays None");

    assert_eq!(run.outcomes.len(), stepped.len());
    for (a, b) in run.outcomes.iter().zip(&stepped) {
        assert_eq!(a.frame_index, b.frame_index);
        assert_eq!(a.full_render, b.full_render);
        assert_eq!(a.report.time_s, b.report.time_s, "frame {}", a.frame_index);
        assert_eq!(a.report.energy.total(), b.report.energy.total());
        assert_eq!(a.psnr_db, b.psnr_db);
        assert_eq!(a.ssim, b.ssim);
        match (&a.warp_stats, &b.warp_stats) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.total, y.total);
                assert_eq!(x.warped, y.warped);
                assert_eq!(x.disoccluded, y.disoccluded);
                assert_eq!(x.void_pixels, y.void_pixels);
                assert_eq!(x.rejected, y.rejected);
            }
            _ => panic!("warp stats mismatch at frame {}", a.frame_index),
        }
    }
    for (fa, fb) in run.frames.iter().zip(&step_frames) {
        assert_eq!(fa.color.pixels(), fb.color.pixels());
    }
    assert_eq!(run.warp_totals.total, session.warp_totals().total);
    assert_eq!(run.warp_totals.warped, session.warp_totals().warped);
}

#[test]
fn all_variants_and_scenarios_are_equivalent() {
    for variant in Variant::ALL {
        for scenario in [Scenario::Local, Scenario::Remote] {
            assert_equivalent(
                &cfg(variant, scenario, 4, RefPlacement::Extrapolated),
                7,
                24,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized windows, trajectory lengths and placements agree too.
    #[test]
    fn randomized_schedules_are_equivalent(
        window in 1usize..6,
        frames in 2usize..10,
        pick in 0usize..8,
    ) {
        let variant = Variant::ALL[pick % 4];
        let scenario = if pick < 4 { Scenario::Local } else { Scenario::Remote };
        let placement = match pick % 3 {
            0 => RefPlacement::Extrapolated,
            1 => RefPlacement::OracleCentered,
            _ => RefPlacement::OnTrajectory,
        };
        assert_equivalent(&cfg(variant, scenario, window, placement), frames, 16);
    }
}
