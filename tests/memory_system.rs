//! Memory-system integration: real model gather traces through the cache,
//! DRAM, bank and MVoxel simulators, checking the paper's §II-D/§IV claims
//! end to end.

use cicero::traffic::{
    address_map, PairSink, PixelCentricConfig, PixelCentricTraffic, StreamingConfig,
    StreamingTraffic,
};
use cicero_field::render::{render_full, RenderOptions};
use cicero_field::{bake, GridConfig, HashConfig, NerfModel};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use cicero_scene::library;

fn camera(n: usize) -> Camera {
    Camera::new(
        Intrinsics::from_fov(n, n, 0.9),
        Pose::look_at(Vec3::new(0.0, 1.1, -2.6), Vec3::ZERO, Vec3::Y),
    )
}

#[test]
fn address_map_covers_all_model_regions_disjointly() {
    let scene = library::scene_by_name("mic").unwrap();
    let model = bake::bake_hash(
        &scene,
        &HashConfig {
            levels: 4,
            base_resolution: 8,
            max_resolution: 48,
            table_size_log2: 12,
            ..Default::default()
        },
    );
    let map = address_map(&model);
    assert_eq!(map.region_count(), 4);
    // Region extents must not overlap and must cover the model footprint.
    let mut covered = 0;
    for r in 0..4u16 {
        covered += map.region_size(r);
        if r > 0 {
            assert!(map.region_base(r) >= map.region_base(r - 1) + map.region_size(r - 1));
        }
    }
    assert_eq!(covered, model.memory_footprint_bytes());
}

#[test]
fn pixel_centric_traffic_is_irregular_and_conflicted() {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    let mut sink = PixelCentricTraffic::new(&model, PixelCentricConfig::default());
    let (_, stats) = render_full(&model, &camera(64), &RenderOptions::default(), &mut sink);
    let report = sink.finish();

    // §II-D structure: substantial non-streaming DRAM and bank conflicts.
    assert!(report.dram.non_streaming_fraction() > 0.3);
    assert!(report.bank.conflict_rate() > 0.05);
    assert!(report.bank.requests >= stats.gather_entry_reads);
    // Cache accesses at least one line per entry read.
    assert!(report.cache.hits + report.cache.misses >= stats.gather_entry_reads);
}

#[test]
fn streaming_traffic_is_fully_streaming_for_dense_models() {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    let mut sink = StreamingTraffic::new(&model, StreamingConfig::default());
    let (_, stats) = render_full(&model, &camera(64), &RenderOptions::default(), &mut sink);
    let report = sink.finish();

    assert_eq!(report.dram.random_bytes, 0, "dense grids stream entirely");
    assert!(report.touched_mvoxels > 0);
    // Every processed sample has exactly one RIT record (single region).
    assert_eq!(report.rit_records, stats.samples_processed);
    // Feature stream bounded by the model plus halo overhead.
    assert!(report.mvoxel_bytes <= model.memory_footprint_bytes());
    assert!(report.halo_bytes < report.mvoxel_bytes);
}

#[test]
fn mvoxel_stream_is_insensitive_to_ray_count() {
    // The defining FS property: doubling rays re-uses the same MVoxels
    // instead of adding feature traffic.
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    let measure = |res: usize| {
        let mut sink = StreamingTraffic::new(&model, StreamingConfig::default());
        render_full(&model, &camera(res), &RenderOptions::default(), &mut sink);
        sink.finish()
    };
    let small = measure(48);
    let large = measure(96); // 4× the rays
    assert!(
        (large.mvoxel_bytes as f64) < small.mvoxel_bytes as f64 * 2.0,
        "feature stream grew {} → {} for 4x rays",
        small.mvoxel_bytes,
        large.mvoxel_bytes
    );
    // Per-sample costs do scale.
    assert!(large.spill_bytes > small.spill_bytes * 2);
}

#[test]
fn pair_sink_keeps_both_analyses_consistent() {
    let scene = library::scene_by_name("mic").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 48,
            ..Default::default()
        },
    );
    let mut pc = PixelCentricTraffic::new(&model, PixelCentricConfig::default());
    let mut fs = StreamingTraffic::new(&model, StreamingConfig::default());
    let stats = {
        let mut both = PairSink(&mut pc, &mut fs);
        let (_, stats) = render_full(&model, &camera(48), &RenderOptions::default(), &mut both);
        stats
    };
    let pc_report = pc.finish();
    let fs_report = fs.finish();
    assert!(pc_report.cache.hits + pc_report.cache.misses >= stats.gather_entry_reads);
    assert_eq!(fs_report.rit_records, stats.samples_processed);
}

#[test]
fn hashed_levels_produce_bounded_random_traffic() {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_hash(
        &scene,
        &HashConfig {
            levels: 6,
            base_resolution: 8,
            max_resolution: 96,
            table_size_log2: 12,
            ..Default::default()
        },
    );
    let mut sink = StreamingTraffic::new(&model, StreamingConfig::default());
    render_full(&model, &camera(48), &RenderOptions::default(), &mut sink);
    let report = sink.finish();
    assert!(
        report.hashed_random_bytes > 0,
        "hashed levels revert to random"
    );
    // Residual random traffic cannot exceed all hashed entry reads uncached.
    let hashed_levels = 6 - model.encoding.first_hashed_level();
    assert!(hashed_levels > 0);
    let upper = report.rit_records / (6 - hashed_levels).max(1) as u64 // samples
        * hashed_levels as u64
        * 8
        * 64; // line per entry
    assert!(
        report.hashed_random_bytes <= upper,
        "{} > {upper}",
        report.hashed_random_bytes
    );
}
