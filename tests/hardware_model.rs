//! Hardware-model integration: SoC reports driven by real measured workloads
//! must reproduce the paper's qualitative architecture results.

use cicero::traffic::{
    build_workload, PairSink, PixelCentricConfig, PixelCentricTraffic, StreamingConfig,
    StreamingTraffic,
};
use cicero::Variant;
use cicero_accel::config::SocConfig;
use cicero_accel::rivals;
use cicero_accel::soc::SocModel;
use cicero_accel::FrameWorkload;
use cicero_field::render::{render_full, RenderOptions};
use cicero_field::{bake, GridConfig, NerfModel};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use cicero_scene::library;

fn measured_workloads() -> (FrameWorkload, FrameWorkload) {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    let cam = Camera::new(
        Intrinsics::from_fov(64, 64, 0.9),
        Pose::look_at(Vec3::new(0.0, 1.1, -2.6), Vec3::ZERO, Vec3::Y),
    );
    let mut pc = PixelCentricTraffic::new(
        &model,
        PixelCentricConfig {
            cache_bytes: 64 << 10,
            ..Default::default()
        },
    );
    let mut fs = StreamingTraffic::new(&model, StreamingConfig::default());
    let stats = {
        let mut both = PairSink(&mut pc, &mut fs);
        let (_, stats) = render_full(&model, &cam, &RenderOptions::default(), &mut both);
        stats
    };
    let pc_rep = pc.finish();
    let fs_rep = fs.finish();
    let w_pc = build_workload(
        &stats,
        NerfModel::decoder(&model),
        Some(&pc_rep),
        None,
        None,
    );
    let w_fs = build_workload(
        &stats,
        NerfModel::decoder(&model),
        None,
        Some(&fs_rep),
        None,
    );
    (w_pc, w_fs)
}

#[test]
fn soc_variant_ladder_on_measured_workloads() {
    let (w_pc, w_fs) = measured_workloads();
    let soc = SocModel::new(SocConfig::default());
    let base = soc.full_frame(&w_pc, Variant::Baseline);
    let fs = soc.full_frame(&w_fs, Variant::SparwFs);
    let gu = soc.full_frame(&w_fs, Variant::Cicero);
    assert!(
        fs.time_s <= base.time_s * 1.05,
        "FS {} vs base {}",
        fs.time_s,
        base.time_s
    );
    assert!(
        gu.time_s <= fs.time_s,
        "GU {} vs FS {}",
        gu.time_s,
        fs.time_s
    );
    assert!(gu.energy.total() < base.energy.total());
    // The GU variant stops using GPU gather energy and gains GU energy.
    assert!(gu.energy.gu_j > 0.0);
    assert!(gu.energy.gpu_j < base.energy.gpu_j);
}

#[test]
fn gu_outperforms_gpu_gathering_on_real_traces() {
    let (w_pc, w_fs) = measured_workloads();
    let soc = SocModel::new(SocConfig::default());
    let gpu_gather = soc.gpu.gather_time(&w_pc);
    let gu_gather = soc.gu.gather_time(&w_fs);
    let speedup = gpu_gather / gu_gather;
    // Paper Fig. 20 direction (72× at their scale; conservative here).
    assert!(speedup > 2.0, "GU gather speedup only {speedup:.1}x");
}

#[test]
fn energy_breakdown_components_are_consistent() {
    let (w_pc, _) = measured_workloads();
    let soc = SocModel::new(SocConfig::default());
    let r = soc.full_frame(&w_pc, Variant::Baseline);
    let e = r.energy;
    let sum = e.gpu_j + e.npu_j + e.gu_j + e.dram_j + e.wireless_j + e.static_j;
    assert!((sum - e.total()).abs() < 1e-12);
    assert!(e.gpu_j > 0.0 && e.npu_j > 0.0 && e.dram_j > 0.0);
    assert_eq!(e.gu_j, 0.0, "baseline has no GU");
    assert_eq!(e.wireless_j, 0.0, "local scenario");
}

#[test]
fn window_amortization_converges_to_target_cost() {
    let (w_pc, _) = measured_workloads();
    let soc = SocModel::new(SocConfig::default());
    let sparse = w_pc.scaled(0.05);
    let t = |n: usize| {
        soc.sparw_local_frame(&w_pc, &sparse, n, Variant::Sparw)
            .time_s
    };
    let t4 = t(4);
    let t16 = t(16);
    let t64 = t(64);
    assert!(t16 < t4);
    assert!(t64 < t16);
    // Diminishing returns: the gap shrinks as the reference amortizes away.
    assert!((t16 - t64) < (t4 - t16));
}

#[test]
fn rivals_order_matches_fig24() {
    // Fig. 24 is Instant-NGP-specific: both rivals are INGP accelerators and
    // their advantage structure (hash bank conflicts, level residency) only
    // exists there.
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_hash(
        &scene,
        &cicero_field::HashConfig {
            levels: 6,
            base_resolution: 8,
            max_resolution: 96,
            table_size_log2: 13,
            ..Default::default()
        },
    );
    let cam = Camera::new(
        Intrinsics::from_fov(64, 64, 0.9),
        Pose::look_at(Vec3::new(0.0, 1.1, -2.6), Vec3::ZERO, Vec3::Y),
    );
    let mut pc = PixelCentricTraffic::new(
        &model,
        PixelCentricConfig {
            cache_bytes: 64 << 10,
            ..Default::default()
        },
    );
    let mut fs = StreamingTraffic::new(&model, StreamingConfig::default());
    let stats = {
        let mut both = PairSink(&mut pc, &mut fs);
        let (_, stats) = render_full(&model, &cam, &RenderOptions::default(), &mut both);
        stats
    };
    let pc_rep = pc.finish();
    let fs_rep = fs.finish();
    let w_pc = build_workload(
        &stats,
        NerfModel::decoder(&model),
        Some(&pc_rep),
        None,
        None,
    );
    let w_fs = build_workload(
        &stats,
        NerfModel::decoder(&model),
        None,
        Some(&fs_rep),
        None,
    );
    let soc = SocModel::new(SocConfig::default());
    let neurex = rivals::neurex_frame(&soc, &w_pc);
    let ngpc = rivals::ngpc_frame(&soc, &w_pc);
    let cicero = rivals::cicero_no_sparw_frame(&soc, &w_fs);
    assert!(cicero.time_s < neurex.time_s, "Cicero beats NeuRex");
    let ngpc_ratio = ngpc.time_s / cicero.time_s;
    assert!(
        ngpc_ratio > 0.2 && ngpc_ratio < 5.0,
        "NGPC within range: {ngpc_ratio:.2}"
    );
}
