//! Streaming pose ingestion must be observationally equivalent to
//! whole-trajectory submission: a client that feeds its poses one at a time
//! (`push_pose`) and closes the stream gets bit-identical frames, statistics
//! and service reports — per pipeline variant, and at any host thread
//! budget. The serve layer additionally interleaves `run()` calls between
//! pose batches: partial feeds drain deterministically and the final report
//! still covers every frame exactly once.

use cicero::pipeline::{run_pipeline, PipelineConfig, PipelineSession};
use cicero::Variant;
use cicero_field::{bake, GridConfig, GridModel};
use cicero_math::Intrinsics;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, AnalyticScene, Trajectory};
use cicero_serve::{FrameServer, QosClass, ServeConfig, SessionSpec};

fn assets() -> (AnalyticScene, GridModel, Trajectory) {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 24,
            ..Default::default()
        },
    );
    // 10 frames at window 4: windows [1,5) and [5,9) complete mid-stream,
    // frame 9 sits in a partial tail window only `close_stream` can flush.
    let traj = Trajectory::orbit(&scene, 10, 30.0);
    (scene, model, traj)
}

fn cfg(variant: Variant) -> PipelineConfig {
    PipelineConfig {
        variant,
        window: 4,
        march: MarchParams {
            step: 0.05,
            ..Default::default()
        },
        collect_quality: true, // PSNR equality ⇒ frames match too
        collect_traffic: false,
        ..Default::default()
    }
}

fn spec(name: &str, variant: Variant, offset: f64) -> SessionSpec {
    SessionSpec {
        name: name.into(),
        scene_key: "lego".into(),
        qos: QosClass::Standard,
        start_offset_s: offset,
        config: cfg(variant),
    }
}

/// Core-level: pushing poses one at a time (stepping greedily whenever the
/// window-atomic planner allows) reproduces `run_pipeline` bit for bit.
#[test]
fn push_pose_stepping_matches_run_pipeline() {
    let (scene, model, traj) = assets();
    let k = Intrinsics::from_fov(24, 24, 0.9);
    for variant in [Variant::Sparw, Variant::Cicero] {
        let whole = run_pipeline(&scene, &model, &traj, k, &cfg(variant));
        let mut sess = PipelineSession::new_streaming(&scene, &model, traj.fps(), k, &cfg(variant));
        let mut frames = Vec::new();
        let mut outcomes = Vec::new();
        for pose in traj.poses() {
            sess.push_pose(*pose);
            while sess.can_step() {
                let step = sess.step().unwrap();
                frames.push(step.frame);
                outcomes.push(step.outcome);
            }
        }
        sess.close_stream();
        while let Some(step) = sess.step() {
            frames.push(step.frame);
            outcomes.push(step.outcome);
        }
        assert_eq!(frames, whole.frames, "{variant:?}");
        assert_eq!(outcomes.len(), whole.outcomes.len());
        for (a, b) in whole.outcomes.iter().zip(&outcomes) {
            assert_eq!(a.report.time_s, b.report.time_s, "{variant:?}");
            assert_eq!(a.psnr_db, b.psnr_db, "{variant:?}");
            assert_eq!(a.full_render, b.full_render);
        }
    }
}

/// Serve-level: a fleet mixing whole-trajectory and streaming submissions,
/// where every stream is fed pose-by-pose before the drain, reports exactly
/// like the all-whole-trajectory fleet — per variant, at budgets {1, 4}
/// (against the serial budget-0 oracle).
#[test]
fn streamed_sessions_report_identically_to_whole_trajectories() {
    let (scene, model, traj) = assets();
    let k = Intrinsics::from_fov(24, 24, 0.9);
    for variant in [Variant::Sparw, Variant::Cicero] {
        let serve = |budget: usize, streamed: bool| {
            let mut server = FrameServer::new(ServeConfig {
                render_threads: budget,
                ..Default::default()
            });
            for (i, offset) in [0.0, 0.004, 0.011].into_iter().enumerate() {
                let spec = spec(&format!("s{i}"), variant, offset);
                if streamed {
                    let id = server
                        .submit_stream(spec, &scene, &model, traj.fps(), k)
                        .unwrap();
                    for pose in traj.poses() {
                        server.push_pose(id, *pose).unwrap();
                    }
                    server.close_stream(id).unwrap();
                } else {
                    server.submit(spec, &scene, &model, &traj, k).unwrap();
                }
            }
            server.run()
        };

        let oracle = serve(0, false);
        assert_eq!(oracle.frames, 3 * traj.len());
        for budget in [0, 1, 4] {
            let streamed = serve(budget, true);
            assert_eq!(streamed.records, oracle.records, "{variant:?}/{budget}");
            assert_eq!(streamed.sessions, oracle.sessions, "{variant:?}/{budget}");
            assert_eq!(streamed.makespan_s, oracle.makespan_s, "{variant:?}");
            assert_eq!(streamed.cache, oracle.cache, "{variant:?}/{budget}");
            assert_eq!(streamed.reference_jobs, oracle.reference_jobs);
            // And the whole-trajectory fleet itself stays budget-invariant.
            let whole = serve(budget, false);
            assert_eq!(whole.records, oracle.records, "{variant:?}/{budget}");
        }
    }
}

/// Serve-level, mid-stream: `run()` between pose batches drains exactly the
/// frames whose windows are plannable, never more, and the final report
/// covers every frame once. The interleaving itself is deterministic:
/// repeating the same feed schedule reproduces the report bit-for-bit.
#[test]
fn interleaved_push_and_run_drains_incrementally_and_deterministically() {
    let (scene, model, traj) = assets();
    let k = Intrinsics::from_fov(24, 24, 0.9);
    let run_once = || {
        let mut server = FrameServer::new(ServeConfig::default());
        let id = server
            .submit_stream(
                spec("inc", Variant::Cicero, 0.0),
                &scene,
                &model,
                traj.fps(),
                k,
            )
            .unwrap();
        let mut frames_after = Vec::new();
        // Feed in three uneven chunks with a drain after each.
        for chunk in [&traj.poses()[0..3], &traj.poses()[3..4], &traj.poses()[4..]] {
            for pose in chunk {
                server.push_pose(id, *pose).unwrap();
            }
            let report = server.run();
            frames_after.push(report.frames);
        }
        server.close_stream(id).unwrap();
        let report = server.run();
        (frames_after, report)
    };

    let (frames_after, report) = run_once();
    // Window 4, 9 frames: after 3 poses only the bootstrap frame's window is
    // fully planned (frames 1..5 need pose 4); after 4 poses still just the
    // bootstrap; after all 9 poses frames up to the last complete window
    // drain; the close flushes the partial tail window.
    assert_eq!(frames_after[0], 1, "bootstrap drains on first run");
    assert_eq!(frames_after[1], 1, "incomplete window must not drain");
    assert!(frames_after[2] >= 5 && frames_after[2] < traj.len());
    assert_eq!(report.frames, traj.len(), "close flushes the tail");
    assert_eq!(report.records.len(), traj.len());
    // Each frame served exactly once, in trajectory order.
    for (i, r) in report.records.iter().enumerate() {
        assert_eq!(r.frame_index, i);
    }

    // Determinism: the identical feed schedule reproduces the report.
    let (frames_after2, report2) = run_once();
    assert_eq!(frames_after, frames_after2);
    assert_eq!(report.records, report2.records);
    assert_eq!(report.sessions, report2.sessions);
}
