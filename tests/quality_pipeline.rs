//! Quality-path integration: baked models approximate the analytic ground
//! truth; warping preserves it; the comparison baselines order as the paper
//! reports.

use cicero::pipeline::{run_ds2, run_pipeline, run_temp};
use cicero::Variant;
use cicero_field::{bake, GridConfig};
use cicero_math::{metrics, Intrinsics};
use cicero_scene::ground_truth::render_frame;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, Trajectory};

fn setup() -> (
    cicero_scene::AnalyticScene,
    cicero_field::GridModel,
    Trajectory,
    Intrinsics,
) {
    let scene = library::scene_by_name("lego").unwrap();
    let opts = bake::BakeOptions {
        decoder_hidden: 16,
        ..Default::default()
    };
    let model = bake::bake_grid_with(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
        &opts,
    );
    let traj = Trajectory::orbit(&scene, 9, 30.0);
    (scene, model, traj, Intrinsics::from_fov(48, 48, 0.9))
}

fn cfg(variant: Variant, window: usize) -> cicero::pipeline::PipelineConfig {
    cicero::pipeline::PipelineConfig {
        variant,
        window,
        march: MarchParams {
            step: 0.02,
            ..Default::default()
        },
        collect_traffic: false,
        ..Default::default()
    }
}

#[test]
fn baked_model_scores_reasonable_psnr_vs_analytic_truth() {
    let (scene, model, traj, k) = setup();
    let run = run_pipeline(&scene, &model, &traj, k, &cfg(Variant::Baseline, 1));
    assert!(
        run.mean_psnr() > 20.0,
        "grid-64 reconstruction too poor: {:.1} dB",
        run.mean_psnr()
    );
}

#[test]
fn method_ordering_matches_paper_fig16() {
    let (scene, model, traj, k) = setup();
    let gt: Vec<_> = (0..traj.len())
        .map(|i| {
            render_frame(
                &scene,
                &traj.camera(i, k),
                &MarchParams {
                    step: 0.02,
                    ..Default::default()
                },
            )
            .color
        })
        .collect();
    let score = |frames: &[cicero_scene::ground_truth::Frame]| {
        let mse: f64 = frames
            .iter()
            .zip(&gt)
            .map(|(f, g)| metrics::mse(&f.color, g))
            .sum::<f64>()
            / frames.len() as f64;
        -10.0 * mse.log10()
    };

    let base = score(&run_pipeline(&scene, &model, &traj, k, &cfg(Variant::Baseline, 1)).frames);
    let cicero6 = score(&run_pipeline(&scene, &model, &traj, k, &cfg(Variant::Cicero, 6)).frames);
    let ds2 = score(&run_ds2(&scene, &model, &traj, k, &cfg(Variant::Baseline, 1)).frames);
    let temp = score(&run_temp(&scene, &model, &traj, k, &cfg(Variant::Sparw, 8)).frames);

    // Paper Fig. 16 shape: baseline ≥ Cicero-6, Cicero beats DS-2 and Temp.
    assert!(
        base >= cicero6 - 0.3,
        "baseline {base:.2} vs cicero6 {cicero6:.2}"
    );
    assert!(cicero6 > ds2 - 0.5, "cicero6 {cicero6:.2} vs ds2 {ds2:.2}");
    assert!(
        cicero6 >= temp - 0.3,
        "cicero6 {cicero6:.2} vs temp {temp:.2}"
    );
    // And everything is in a plausible PSNR band.
    for (name, v) in [
        ("base", base),
        ("cicero6", cicero6),
        ("ds2", ds2),
        ("temp", temp),
    ] {
        assert!(v > 14.0 && v < 60.0, "{name} = {v:.1} dB out of band");
    }
}

#[test]
fn ssim_tracks_psnr_ordering() {
    let (scene, model, traj, k) = setup();
    let mut full_cfg = cfg(Variant::Baseline, 1);
    full_cfg.collect_quality = true;
    let base = run_pipeline(&scene, &model, &traj, k, &full_cfg);
    let mut c_cfg = cfg(Variant::Cicero, 8);
    c_cfg.collect_quality = true;
    let cic = run_pipeline(&scene, &model, &traj, k, &c_cfg);
    let mean_ssim = |r: &cicero::PipelineRun| {
        let v: Vec<f64> = r.outcomes.iter().filter_map(|o| o.ssim).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(mean_ssim(&base) > 0.5);
    assert!(mean_ssim(&base) >= mean_ssim(&cic) - 0.05);
}

#[test]
fn specular_scene_quality_degrades_more_under_warping() {
    // The paper's §VI-F observation: the radiance approximation weakens on
    // non-diffuse surfaces. Compare warp-induced loss on `materials`
    // (specular) vs `chair` (diffuse) under identical large motion.
    let opts = bake::BakeOptions {
        decoder_hidden: 16,
        ..Default::default()
    };
    // 96²: fine enough that splat noise is small against the specular
    // residual (at 48² both losses drown in silhouette error).
    let k = Intrinsics::from_fov(96, 96, 0.9);
    let mut losses = Vec::new();
    for name in ["lego", "materials"] {
        let scene = library::scene_by_name(name).unwrap();
        let model = bake::bake_grid_with(
            &scene,
            &GridConfig {
                resolution: 64,
                ..Default::default()
            },
            &opts,
        );
        // Gentle VR-rate motion: disocclusion error stays small, so the
        // view-dependent (specular) residual dominates the comparison.
        let traj = Trajectory::orbit(&scene, 7, 30.0);
        let base = run_pipeline(&scene, &model, &traj, k, &cfg(Variant::Baseline, 1));
        let warped = run_pipeline(&scene, &model, &traj, k, &cfg(Variant::Cicero, 6));
        losses.push(base.mean_psnr() - warped.mean_psnr());
    }
    assert!(
        losses[1] > losses[0],
        "specular loss {:.2} dB should exceed diffuse {:.2} dB",
        losses[1],
        losses[0]
    );
}
