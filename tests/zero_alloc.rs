//! The renderer's inner sample loop must perform **zero heap allocations**
//! once its per-thread scratch is warm (ISSUE 2 acceptance criterion; the
//! paper's thesis is that per-sample overheads, not FLOPs, dominate neural
//! rendering). A counting global allocator measures a full warmed-up frame
//! render: the second render through the same scratch must not allocate at
//! all.
//!
//! This file deliberately contains a single `#[test]` — the counter is
//! process-global, and concurrent tests in the same binary would perturb it.

use cicero_field::render::{render_masked, render_masked_with, RenderOptions, RenderScratch};
use cicero_field::{bake, GridConfig, HashConfig, NerfModel, NullSink, TensorConfig};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// wrapper only increments a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn warmed_sample_loop_performs_zero_heap_allocations() {
    let scene = cicero_scene::library::scene_by_name("lego").unwrap();
    let models: [(&str, Box<dyn NerfModel>); 3] = [
        (
            "grid",
            Box::new(bake::bake_grid(
                &scene,
                &GridConfig {
                    resolution: 24,
                    ..Default::default()
                },
            )),
        ),
        (
            "hash",
            Box::new(bake::bake_hash(
                &scene,
                &HashConfig {
                    levels: 4,
                    base_resolution: 4,
                    max_resolution: 24,
                    table_size_log2: 10,
                    ..Default::default()
                },
            )),
        ),
        (
            "tensor",
            Box::new(bake::bake_tensor(
                &scene,
                &TensorConfig {
                    resolution: 24,
                    ..Default::default()
                },
            )),
        ),
    ];
    let cam = Camera::new(
        Intrinsics::from_fov(32, 32, 0.9),
        Pose::look_at(Vec3::new(0.0, 1.2, -2.6), Vec3::ZERO, Vec3::Y),
    );
    let opts = RenderOptions::default();

    for (name, model) in &models {
        let model = model.as_ref();
        let mut frame =
            cicero_scene::ground_truth::background_frame(&cicero_field::ModelSource(model), 32, 32);
        let mut scratch = RenderScratch::new();
        // Warm-up: grows every scratch capacity (features, plan levels, MLP
        // ping-pong activations) to its steady-state size.
        let warm = render_masked_with(
            model,
            &cam,
            &opts,
            None,
            &mut frame,
            &mut NullSink,
            &mut scratch,
        );
        assert!(warm.samples_processed > 0, "{name}: no samples rendered");

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let stats = render_masked_with(
            model,
            &cam,
            &opts,
            None,
            &mut frame,
            &mut NullSink,
            &mut scratch,
        );
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{name}: warmed render of {} samples allocated {} times",
            stats.samples_processed,
            after - before
        );

        // The scratch-less public entry point reuses a per-thread scratch,
        // so the default pipeline path is also allocation-free once warm.
        render_masked(model, &cam, &opts, None, &mut frame, &mut NullSink);
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        render_masked(model, &cam, &opts, None, &mut frame, &mut NullSink);
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{name}: warmed render_masked (thread-local scratch) allocated {} times",
            after - before
        );
    }
}
