//! The renderer's inner sample loop must perform **zero heap allocations**
//! once its per-thread scratch is warm (ISSUE 2 acceptance criterion; the
//! paper's thesis is that per-sample overheads, not FLOPs, dominate neural
//! rendering). A counting global allocator measures a full warmed-up frame
//! render: the second render through the same scratch must not allocate at
//! all.
//!
//! The persistent worker pool widened the contract (ISSUE 3): a warmed
//! **pool-parallel** frame — checkout, job dispatch, pass barriers, direct
//! frame writes, stats merge, worker release — and a warmed pool warp
//! through [`cicero::sparw::warp_frame_into`] (one checkout, four pass
//! barriers, reused output buffers) must also allocate nothing and spawn no
//! threads. The allocator counter is process-global, so it covers the pool
//! workers' lanes too, not just the calling thread.
//!
//! The telemetry subsystem widened it again (ISSUE 6): with the recorder
//! **enabled**, the same warmed paths — frame spans, pool job/pass spans,
//! worker busy/idle tallies, counters and histograms — must still allocate
//! nothing. Per-thread rings are pre-sized atomics created lazily at a
//! thread's first record, so the telemetry-on warm-up frame both grows the
//! scratches and materializes every ring; the measured frame then runs
//! entirely on relaxed atomic stores.
//!
//! This file deliberately contains a single `#[test]` — the counter is
//! process-global, and concurrent tests in the same binary would perturb it.

use cicero::sparw::{warp_frame_into, WarpOptions, WarpResult, WarpScratch};
use cicero_field::pool::RenderPool;
use cicero_field::render::{render_masked, render_masked_with, RenderOptions, RenderScratch};
use cicero_field::tiles::{render_tiled, TileOptions};
use cicero_field::{bake, GridConfig, HashConfig, NerfModel, NullSink, TensorConfig};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use cicero_scene::ground_truth::{render_frame, Frame};
use cicero_scene::volume::MarchParams;
use cicero_scene::RadianceSource;
use cicero_telemetry as telemetry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// wrapper only increments a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn warmed_sample_loop_performs_zero_heap_allocations() {
    let scene = cicero_scene::library::scene_by_name("lego").unwrap();
    let models: [(&str, Box<dyn NerfModel>); 3] = [
        (
            "grid",
            Box::new(bake::bake_grid(
                &scene,
                &GridConfig {
                    resolution: 24,
                    ..Default::default()
                },
            )),
        ),
        (
            "hash",
            Box::new(bake::bake_hash(
                &scene,
                &HashConfig {
                    levels: 4,
                    base_resolution: 4,
                    max_resolution: 24,
                    table_size_log2: 10,
                    ..Default::default()
                },
            )),
        ),
        (
            "tensor",
            Box::new(bake::bake_tensor(
                &scene,
                &TensorConfig {
                    resolution: 24,
                    ..Default::default()
                },
            )),
        ),
    ];
    let cam = Camera::new(
        Intrinsics::from_fov(32, 32, 0.9),
        Pose::look_at(Vec3::new(0.0, 1.2, -2.6), Vec3::ZERO, Vec3::Y),
    );
    let opts = RenderOptions::default();

    // Both sample engines must hold the contract: the scalar marcher
    // (`sample_block == 1`) and the batched SoA engine (whose block scratch —
    // lane arrays, per-lane plan levels, ping-pong activation matrices, open
    // ray contexts — also lives in `RenderScratch` and warms on frame one).
    for sample_block in [1usize, cicero_field::DEFAULT_SAMPLE_BLOCK] {
        for (name, model) in &models {
            let model = model.as_ref();
            let opts = RenderOptions {
                sample_block,
                ..opts
            };
            let mut frame = cicero_scene::ground_truth::background_frame(
                &cicero_field::ModelSource(model),
                32,
                32,
            );
            let mut scratch = RenderScratch::new();
            // Warm-up: grows every scratch capacity (features, plan levels,
            // MLP ping-pong activations, sample-block lanes) to its
            // steady-state size.
            let warm = render_masked_with(
                model,
                &cam,
                &opts,
                None,
                &mut frame,
                &mut NullSink,
                &mut scratch,
            );
            assert!(warm.samples_processed > 0, "{name}: no samples rendered");

            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let stats = render_masked_with(
                model,
                &cam,
                &opts,
                None,
                &mut frame,
                &mut NullSink,
                &mut scratch,
            );
            let after = ALLOCATIONS.load(Ordering::SeqCst);
            assert_eq!(
                after - before,
                0,
                "{name}: warmed block-{sample_block} render of {} samples allocated {} times",
                stats.samples_processed,
                after - before
            );

            // The scratch-less public entry point reuses a per-thread
            // scratch, so the default pipeline path is also allocation-free
            // once warm.
            render_masked(model, &cam, &opts, None, &mut frame, &mut NullSink);
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            render_masked(model, &cam, &opts, None, &mut frame, &mut NullSink);
            let after = ALLOCATIONS.load(Ordering::SeqCst);
            assert_eq!(
                after - before,
                0,
                "{name}: warmed block-{sample_block} render_masked (thread-local scratch) allocated {} times",
                after - before
            );
        }
    }

    // ---- The explicit SIMD kernel layer (ISSUE 9) ----
    //
    // The wide kernels accumulate entirely in registers and gather through
    // the same warmed scratches, so forcing them on must not add a single
    // allocation per warmed frame. Without `--features simd` the toggle is
    // inert and this leg re-measures the scalar path; with it, the toggle
    // stays on (the compiled-in default), so every pool and telemetry leg
    // below also runs the wide splat/normalize/classify warp passes under
    // the same zero-alloc and zero-spawn assertions.
    cicero_field::simd::set_kernels_enabled(true);
    {
        let opts = RenderOptions {
            sample_block: cicero_field::DEFAULT_SAMPLE_BLOCK,
            ..opts
        };
        for (name, model) in &models {
            let model = model.as_ref();
            let mut frame = cicero_scene::ground_truth::background_frame(
                &cicero_field::ModelSource(model),
                32,
                32,
            );
            let mut scratch = RenderScratch::new();
            render_masked_with(
                model,
                &cam,
                &opts,
                None,
                &mut frame,
                &mut NullSink,
                &mut scratch,
            );
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let stats = render_masked_with(
                model,
                &cam,
                &opts,
                None,
                &mut frame,
                &mut NullSink,
                &mut scratch,
            );
            let after = ALLOCATIONS.load(Ordering::SeqCst);
            assert!(stats.samples_processed > 0);
            assert_eq!(
                after - before,
                0,
                "{name}: warmed wide-kernel ({}) render allocated {} times",
                cicero_field::simd::backend(),
                after - before
            );
        }
    }

    // ---- The pool-parallel paths (ISSUE 3) ----
    //
    // Tile rendering through the persistent worker pool: the first frame
    // spawns and warms the workers; after that a frame's checkout, job
    // dispatch, barrier, direct-to-frame tile writes, stats merge and
    // worker release must neither allocate nor spawn.
    let pool = RenderPool::global();
    {
        let model = models[0].1.as_ref(); // grid
        let tile = TileOptions {
            threads: 4,
            tile_rows: 8,
        };
        let mut frame =
            cicero_scene::ground_truth::background_frame(&cicero_field::ModelSource(model), 32, 32);
        for _ in 0..2 {
            render_tiled(model, &cam, &opts, None, &mut frame, &mut NullSink, &tile);
        }
        let spawns_before = pool.spawned_total();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let stats = render_tiled(model, &cam, &opts, None, &mut frame, &mut NullSink, &tile);
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(stats.samples_processed > 0);
        assert_eq!(
            after - before,
            0,
            "warmed pool render allocated {} times",
            after - before
        );
        assert_eq!(
            pool.spawned_total(),
            spawns_before,
            "warmed pool render spawned threads"
        );
    }

    // Pool warping: one checkout, four pass barriers, caller-owned output.
    // `warp_frame_into` reuses the result's frame/status buffers, the warp
    // scratch and the pool workers — a warmed warp is allocation-free end
    // to end.
    {
        let scene = cicero_scene::library::scene_by_name("lego").unwrap();
        let k = Intrinsics::from_fov(48, 48, 0.9);
        let ref_cam = Camera::new(
            k,
            Pose::look_at(Vec3::new(0.0, 1.3, -2.8), Vec3::ZERO, Vec3::Y),
        );
        let tgt_cam = Camera::new(
            k,
            Pose::look_at(Vec3::new(0.2, 1.25, -2.7), Vec3::ZERO, Vec3::Y),
        );
        let reference = render_frame(&scene, &ref_cam, &MarchParams::default());
        let wopts = WarpOptions::default();
        let mut scratch = WarpScratch::new();
        let mut out = WarpResult {
            frame: Frame {
                color: cicero_math::RgbImage::new(0, 0, Vec3::ZERO),
                depth: cicero_math::DepthMap::empty(0, 0),
            },
            status: Vec::new(),
        };
        for _ in 0..2 {
            warp_frame_into(
                &reference,
                &ref_cam,
                &tgt_cam,
                scene.background(),
                &wopts,
                &mut scratch,
                4,
                &mut out,
            );
        }
        let spawns_before = pool.spawned_total();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        warp_frame_into(
            &reference,
            &ref_cam,
            &tgt_cam,
            scene.background(),
            &wopts,
            &mut scratch,
            4,
            &mut out,
        );
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(out.stats().warped > 0);
        assert_eq!(
            after - before,
            0,
            "warmed pool warp allocated {} times",
            after - before
        );
        assert_eq!(
            pool.spawned_total(),
            spawns_before,
            "warmed pool warp spawned threads"
        );
    }

    // ---- The same paths with telemetry ON (ISSUE 6) ----
    //
    // Enabling the recorder must not reintroduce allocations: probes write
    // into pre-sized per-thread atomic rings. The warm-up pass below doubles
    // as ring creation (each thread's ring is built lazily at its first
    // record, which does allocate — once, covered by the warm-up).
    telemetry::enable();
    assert!(telemetry::is_enabled());
    {
        let model = models[0].1.as_ref(); // grid
        let opts = RenderOptions {
            sample_block: cicero_field::DEFAULT_SAMPLE_BLOCK,
            ..opts
        };
        let mut frame =
            cicero_scene::ground_truth::background_frame(&cicero_field::ModelSource(model), 32, 32);
        let mut scratch = RenderScratch::new();

        // Single-thread batched render.
        render_masked_with(
            model,
            &cam,
            &opts,
            None,
            &mut frame,
            &mut NullSink,
            &mut scratch,
        );
        let events_before = telemetry::event_count();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let stats = render_masked_with(
            model,
            &cam,
            &opts,
            None,
            &mut frame,
            &mut NullSink,
            &mut scratch,
        );
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(stats.samples_processed > 0);
        assert_eq!(
            after - before,
            0,
            "telemetry-on warmed render allocated {} times",
            after - before
        );
        assert!(
            telemetry::event_count() > events_before,
            "telemetry-on render recorded no spans"
        );

        // Pool-parallel tile render: worker rings, busy/idle tallies, job
        // and pass spans, checkout counters.
        let tile = TileOptions {
            threads: 4,
            tile_rows: 8,
        };
        for _ in 0..2 {
            render_tiled(model, &cam, &opts, None, &mut frame, &mut NullSink, &tile);
        }
        let jobs_before = telemetry::counter_value(telemetry::Counter::PoolJobs);
        let spawns_before = pool.spawned_total();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        render_tiled(model, &cam, &opts, None, &mut frame, &mut NullSink, &tile);
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "telemetry-on warmed pool render allocated {} times",
            after - before
        );
        assert_eq!(pool.spawned_total(), spawns_before);
        assert!(
            telemetry::counter_value(telemetry::Counter::PoolJobs) > jobs_before,
            "telemetry-on pool render recorded no jobs"
        );
    }

    // Pool warp with telemetry on: warp pass spans ride the pool job spans.
    {
        let scene = cicero_scene::library::scene_by_name("lego").unwrap();
        let k = Intrinsics::from_fov(48, 48, 0.9);
        let ref_cam = Camera::new(
            k,
            Pose::look_at(Vec3::new(0.0, 1.3, -2.8), Vec3::ZERO, Vec3::Y),
        );
        let tgt_cam = Camera::new(
            k,
            Pose::look_at(Vec3::new(0.2, 1.25, -2.7), Vec3::ZERO, Vec3::Y),
        );
        let reference = render_frame(&scene, &ref_cam, &MarchParams::default());
        let wopts = WarpOptions::default();
        let mut scratch = WarpScratch::new();
        let mut out = WarpResult {
            frame: Frame {
                color: cicero_math::RgbImage::new(0, 0, Vec3::ZERO),
                depth: cicero_math::DepthMap::empty(0, 0),
            },
            status: Vec::new(),
        };
        for _ in 0..2 {
            warp_frame_into(
                &reference,
                &ref_cam,
                &tgt_cam,
                scene.background(),
                &wopts,
                &mut scratch,
                4,
                &mut out,
            );
        }
        let events_before = telemetry::event_count();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        warp_frame_into(
            &reference,
            &ref_cam,
            &tgt_cam,
            scene.background(),
            &wopts,
            &mut scratch,
            4,
            &mut out,
        );
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(out.stats().warped > 0);
        assert_eq!(
            after - before,
            0,
            "telemetry-on warmed pool warp allocated {} times",
            after - before
        );
        assert!(
            telemetry::event_count() > events_before,
            "telemetry-on warp recorded no spans"
        );
    }
    telemetry::disable();
    assert!(!telemetry::is_enabled());

    // ---- Armed fault injection (ISSUE 7) ----
    //
    // Fault decisions are keyed hashes over stack bytes: an armed
    // [`FaultPlan`] consulted at every scheduler seam must add zero heap
    // allocations per warmed frame. A dense sweep over every fault kind —
    // far more draws than any real frame performs — must leave the
    // allocation counter untouched.
    {
        use cicero_serve::{FaultKind, FaultPlan};
        let plan = FaultPlan::seeded(7);
        let kinds = [
            FaultKind::WorkerCrash,
            FaultKind::Straggler,
            FaultKind::CacheCorruption,
            FaultKind::PoseStall,
            FaultKind::PoseDrop,
        ];
        // Warm-up (nothing to warm — draws own no state — but keep the
        // measurement shape identical to the other legs).
        let mut fired = 0u64;
        for kind in kinds {
            fired += u64::from(plan.fires(kind, 1, 2, 3));
        }
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for kind in kinds {
            for a in 0..256u64 {
                fired += u64::from(std::hint::black_box(plan.fires(kind, a, a / 3, a % 5)));
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "armed fault draws allocated {} times",
            after - before
        );
        assert!(std::hint::black_box(fired) > 0, "seeded plan never fired");
    }
}
