//! Tile-parallel rendering and warping must be *bit-identical* to the
//! sequential paths — for every thread count, scene, model family and
//! pipeline variant. This is the contract that makes `render_threads` a pure
//! wall-clock knob: experiment reproducibility, the serve layer's reference
//! cache and the simulated timelines all rely on it.

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::sparw::{warp_frame, warp_frame_with, WarpOptions, WarpScratch};
use cicero::Variant;
use cicero_field::tiles::{render_full_tiled, TileOptions};
use cicero_field::{bake, render::render_full, GatherPlan, HashConfig, RenderOptions};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use cicero_scene::ground_truth::render_frame;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, RadianceSource, Trajectory};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn fast_cfg(variant: Variant, threads: usize) -> PipelineConfig {
    PipelineConfig {
        variant,
        window: 3,
        march: MarchParams {
            step: 0.05,
            ..Default::default()
        },
        collect_quality: false,
        collect_traffic: false,
        render_threads: threads,
        ..Default::default()
    }
}

#[test]
fn tiled_render_is_bit_identical_across_scenes_models_and_threads() {
    for scene_name in ["lego", "chair"] {
        let scene = library::scene_by_name(scene_name).unwrap();
        let models: [Box<dyn cicero_field::NerfModel>; 2] = [
            Box::new(bake::bake_grid(
                &scene,
                &cicero_field::GridConfig {
                    resolution: 24,
                    ..Default::default()
                },
            )),
            Box::new(bake::bake_hash(
                &scene,
                &HashConfig {
                    levels: 4,
                    base_resolution: 4,
                    max_resolution: 24,
                    table_size_log2: 10,
                    ..Default::default()
                },
            )),
        ];
        let cam = Camera::new(
            Intrinsics::from_fov(33, 33, 0.9), // odd size: ragged last tile
            Pose::look_at(Vec3::new(0.3, 1.2, -2.6), Vec3::ZERO, Vec3::Y),
        );
        let opts = RenderOptions::default();
        for model in &models {
            let model = model.as_ref();
            let mut seq_events: Vec<(u32, f32, u64)> = Vec::new();
            let mut seq_sink =
                |ray: u32, t: f32, p: &GatherPlan| seq_events.push((ray, t, p.bytes()));
            let (seq_frame, seq_stats) = render_full(model, &cam, &opts, &mut seq_sink);
            for threads in THREAD_COUNTS {
                let mut events: Vec<(u32, f32, u64)> = Vec::new();
                let mut sink = |ray: u32, t: f32, p: &GatherPlan| events.push((ray, t, p.bytes()));
                let (frame, stats) = render_full_tiled(
                    model,
                    &cam,
                    &opts,
                    &mut sink,
                    &TileOptions {
                        threads,
                        tile_rows: 8,
                    },
                );
                assert_eq!(frame, seq_frame, "{scene_name}: {threads} threads");
                assert_eq!(stats, seq_stats, "{scene_name}: {threads} threads");
                assert_eq!(
                    events, seq_events,
                    "{scene_name}: sink stream, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn parallel_warp_is_bit_identical_across_scenes_and_threads() {
    for scene_name in ["lego", "ship"] {
        let scene = library::scene_by_name(scene_name).unwrap();
        let k = Intrinsics::from_fov(48, 48, 0.9);
        let ref_cam = Camera::new(
            k,
            Pose::look_at(Vec3::new(0.0, 1.3, -2.8), Vec3::ZERO, Vec3::Y),
        );
        let tgt_cam = Camera::new(
            k,
            Pose::look_at(Vec3::new(0.25, 1.2, -2.7), Vec3::ZERO, Vec3::Y),
        );
        let reference = render_frame(&scene, &ref_cam, &MarchParams::default());
        let opts = WarpOptions::default();
        let seq = warp_frame(&reference, &ref_cam, &tgt_cam, scene.background(), &opts);
        let mut scratch = WarpScratch::new();
        for threads in THREAD_COUNTS {
            let par = warp_frame_with(
                &reference,
                &ref_cam,
                &tgt_cam,
                scene.background(),
                &opts,
                &mut scratch,
                threads,
            );
            assert_eq!(par.frame, seq.frame, "{scene_name}: {threads} threads");
            assert_eq!(par.status, seq.status, "{scene_name}: {threads} threads");
        }
    }
}

#[test]
fn pipeline_runs_are_bit_identical_across_thread_counts() {
    for scene_name in ["lego", "chair"] {
        let scene = library::scene_by_name(scene_name).unwrap();
        let model = bake::bake_grid(
            &scene,
            &cicero_field::GridConfig {
                resolution: 24,
                ..Default::default()
            },
        );
        let traj = Trajectory::orbit(&scene, 6, 30.0);
        let k = Intrinsics::from_fov(32, 32, 0.9);
        for variant in [Variant::Sparw, Variant::Cicero] {
            let seq = run_pipeline(&scene, &model, &traj, k, &fast_cfg(variant, 1));
            for threads in [2, 3, 8] {
                let par = run_pipeline(&scene, &model, &traj, k, &fast_cfg(variant, threads));
                assert_eq!(
                    par.frames, seq.frames,
                    "{scene_name}/{variant:?}: frames differ at {threads} threads"
                );
                assert_eq!(par.warp_totals, seq.warp_totals);
                for (p, s) in par.outcomes.iter().zip(&seq.outcomes) {
                    assert_eq!(
                        p.report.time_s, s.report.time_s,
                        "{scene_name}/{variant:?}: simulated time drifted at {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn traffic_collection_is_deterministic_under_parallel_rendering() {
    // The memory simulators replay the gather stream; tile traces must hand
    // them the exact sequential order or the modeled timings would drift.
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &cicero_field::GridConfig {
            resolution: 20,
            ..Default::default()
        },
    );
    let traj = Trajectory::orbit(&scene, 4, 30.0);
    let k = Intrinsics::from_fov(24, 24, 0.9);
    for variant in [Variant::Cicero, Variant::Sparw] {
        let mut cfg = fast_cfg(variant, 1);
        cfg.collect_traffic = true;
        let seq = run_pipeline(&scene, &model, &traj, k, &cfg);
        cfg.render_threads = 4;
        let par = run_pipeline(&scene, &model, &traj, k, &cfg);
        assert_eq!(par.frames, seq.frames);
        for (p, s) in par.outcomes.iter().zip(&seq.outcomes) {
            assert_eq!(p.report.time_s, s.report.time_s, "{variant:?}");
            assert_eq!(
                p.report.energy.total(),
                s.report.energy.total(),
                "{variant:?}"
            );
        }
    }
}
