//! Tile-parallel rendering and warping must be *bit-identical* to the
//! sequential paths — for every thread count, scene, model family and
//! pipeline variant. This is the contract that makes `render_threads` a pure
//! wall-clock knob: experiment reproducibility, the serve layer's reference
//! cache and the simulated timelines all rely on it.
//!
//! Since the persistent worker pool took over every data-parallel pass, the
//! contract widened: it must also survive the pool's *lifecycle* — worker
//! reuse across frames and sessions, resizes mid-run, and the serve
//! scheduler stepping many sessions concurrently on one pool.

use cicero::pipeline::{run_pipeline, PipelineConfig, PipelineSession};
use cicero::sparw::{warp_frame, warp_frame_with, WarpOptions, WarpScratch};
use cicero::Variant;
use cicero_field::pool::RenderPool;
use cicero_field::tiles::{render_full_tiled, TileOptions};
use cicero_field::{bake, render::render_full, GatherPlan, HashConfig, RenderOptions};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use cicero_scene::ground_truth::render_frame;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, RadianceSource, Trajectory};
use cicero_serve::{
    FrameServer, IdleWorkerPrefetch, LoadAdaptiveDegrade, Policies, QosClass, SceneAffinity,
    ServeConfig, SessionSpec,
};
use cicero_telemetry as telemetry;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn fast_cfg(variant: Variant, threads: usize) -> PipelineConfig {
    PipelineConfig {
        variant,
        window: 3,
        march: MarchParams {
            step: 0.05,
            ..Default::default()
        },
        collect_quality: false,
        collect_traffic: false,
        render_threads: threads,
        ..Default::default()
    }
}

#[test]
fn tiled_render_is_bit_identical_across_scenes_models_and_threads() {
    for scene_name in ["lego", "chair"] {
        let scene = library::scene_by_name(scene_name).unwrap();
        let models: [Box<dyn cicero_field::NerfModel>; 2] = [
            Box::new(bake::bake_grid(
                &scene,
                &cicero_field::GridConfig {
                    resolution: 24,
                    ..Default::default()
                },
            )),
            Box::new(bake::bake_hash(
                &scene,
                &HashConfig {
                    levels: 4,
                    base_resolution: 4,
                    max_resolution: 24,
                    table_size_log2: 10,
                    ..Default::default()
                },
            )),
        ];
        let cam = Camera::new(
            Intrinsics::from_fov(33, 33, 0.9), // odd size: ragged last tile
            Pose::look_at(Vec3::new(0.3, 1.2, -2.6), Vec3::ZERO, Vec3::Y),
        );
        let opts = RenderOptions::default();
        for model in &models {
            let model = model.as_ref();
            let mut seq_events: Vec<(u32, f32, u64)> = Vec::new();
            let mut seq_sink =
                |ray: u32, t: f32, p: &GatherPlan| seq_events.push((ray, t, p.bytes()));
            let (seq_frame, seq_stats) = render_full(model, &cam, &opts, &mut seq_sink);
            for threads in THREAD_COUNTS {
                let mut events: Vec<(u32, f32, u64)> = Vec::new();
                let mut sink = |ray: u32, t: f32, p: &GatherPlan| events.push((ray, t, p.bytes()));
                let (frame, stats) = render_full_tiled(
                    model,
                    &cam,
                    &opts,
                    &mut sink,
                    &TileOptions {
                        threads,
                        tile_rows: 8,
                    },
                );
                assert_eq!(frame, seq_frame, "{scene_name}: {threads} threads");
                assert_eq!(stats, seq_stats, "{scene_name}: {threads} threads");
                assert_eq!(
                    events, seq_events,
                    "{scene_name}: sink stream, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn parallel_warp_is_bit_identical_across_scenes_and_threads() {
    for scene_name in ["lego", "ship"] {
        let scene = library::scene_by_name(scene_name).unwrap();
        let k = Intrinsics::from_fov(48, 48, 0.9);
        let ref_cam = Camera::new(
            k,
            Pose::look_at(Vec3::new(0.0, 1.3, -2.8), Vec3::ZERO, Vec3::Y),
        );
        let tgt_cam = Camera::new(
            k,
            Pose::look_at(Vec3::new(0.25, 1.2, -2.7), Vec3::ZERO, Vec3::Y),
        );
        let reference = render_frame(&scene, &ref_cam, &MarchParams::default());
        let opts = WarpOptions::default();
        let seq = warp_frame(&reference, &ref_cam, &tgt_cam, scene.background(), &opts);
        let mut scratch = WarpScratch::new();
        for threads in THREAD_COUNTS {
            let par = warp_frame_with(
                &reference,
                &ref_cam,
                &tgt_cam,
                scene.background(),
                &opts,
                &mut scratch,
                threads,
            );
            assert_eq!(par.frame, seq.frame, "{scene_name}: {threads} threads");
            assert_eq!(par.status, seq.status, "{scene_name}: {threads} threads");
        }
    }
}

#[test]
fn pipeline_runs_are_bit_identical_across_thread_counts() {
    for scene_name in ["lego", "chair"] {
        let scene = library::scene_by_name(scene_name).unwrap();
        let model = bake::bake_grid(
            &scene,
            &cicero_field::GridConfig {
                resolution: 24,
                ..Default::default()
            },
        );
        let traj = Trajectory::orbit(&scene, 6, 30.0);
        let k = Intrinsics::from_fov(32, 32, 0.9);
        for variant in [Variant::Sparw, Variant::Cicero] {
            let seq = run_pipeline(&scene, &model, &traj, k, &fast_cfg(variant, 1));
            for threads in [2, 3, 8] {
                let par = run_pipeline(&scene, &model, &traj, k, &fast_cfg(variant, threads));
                assert_eq!(
                    par.frames, seq.frames,
                    "{scene_name}/{variant:?}: frames differ at {threads} threads"
                );
                assert_eq!(par.warp_totals, seq.warp_totals);
                for (p, s) in par.outcomes.iter().zip(&seq.outcomes) {
                    assert_eq!(
                        p.report.time_s, s.report.time_s,
                        "{scene_name}/{variant:?}: simulated time drifted at {threads} threads"
                    );
                }
            }
        }
    }
}

/// The persistent pool's workers (and their thread-local scratches) serve
/// every frame of every session; reuse across frames, interleaved sessions
/// and whole-session lifetimes must never leak state into the output.
#[test]
fn pool_reuse_across_frames_and_sessions_is_bit_identical() {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &cicero_field::GridConfig {
            resolution: 24,
            ..Default::default()
        },
    );
    let cam = Camera::new(
        Intrinsics::from_fov(33, 33, 0.9),
        Pose::look_at(Vec3::new(0.3, 1.2, -2.6), Vec3::ZERO, Vec3::Y),
    );
    let opts = RenderOptions::default();
    let (seq_frame, seq_stats) = render_full(&model, &cam, &opts, &mut cicero_field::NullSink);

    // Back-to-back frames through the same warm pool.
    let tile = TileOptions {
        threads: 4,
        tile_rows: 8,
    };
    for i in 0..4 {
        let (frame, stats) =
            render_full_tiled(&model, &cam, &opts, &mut cicero_field::NullSink, &tile);
        assert_eq!(frame, seq_frame, "pool frame {i}");
        assert_eq!(stats, seq_stats, "pool stats {i}");
    }

    // Two sessions stepped in lockstep share the pool's workers frame by
    // frame; each must reproduce its own solo (sequential) run exactly.
    let traj = Trajectory::orbit(&scene, 6, 30.0);
    let k = Intrinsics::from_fov(32, 32, 0.9);
    for variant in [Variant::Sparw, Variant::Cicero] {
        let solo = run_pipeline(&scene, &model, &traj, k, &fast_cfg(variant, 1));
        let mut a = PipelineSession::new(&scene, &model, &traj, k, &fast_cfg(variant, 3));
        let mut b = PipelineSession::new(&scene, &model, &traj, k, &fast_cfg(variant, 8));
        let mut frames_a = Vec::new();
        let mut frames_b = Vec::new();
        loop {
            let (sa, sb) = (a.step(), b.step());
            if sa.is_none() && sb.is_none() {
                break;
            }
            frames_a.extend(sa.map(|s| s.frame));
            frames_b.extend(sb.map(|s| s.frame));
        }
        assert_eq!(frames_a, solo.frames, "{variant:?}: interleaved session a");
        assert_eq!(frames_b, solo.frames, "{variant:?}: interleaved session b");
    }
}

/// Resizing the pool mid-run — capping it to zero (every pass degrades to
/// inline), regrowing it, shrinking between frames — must never change a
/// pixel. Lane counts are a pure wall-clock knob even while they fluctuate.
#[test]
fn pool_resize_mid_run_keeps_output_bit_identical() {
    let scene = library::scene_by_name("chair").unwrap();
    let model = bake::bake_grid(
        &scene,
        &cicero_field::GridConfig {
            resolution: 24,
            ..Default::default()
        },
    );
    let cam = Camera::new(
        Intrinsics::from_fov(40, 40, 0.9),
        Pose::look_at(Vec3::new(0.2, 1.1, -2.7), Vec3::ZERO, Vec3::Y),
    );
    let opts = RenderOptions::default();
    let (seq_frame, seq_stats) = render_full(&model, &cam, &opts, &mut cicero_field::NullSink);

    let pool = RenderPool::global();
    let tile = TileOptions {
        threads: 8,
        tile_rows: 6,
    };
    // Also resize across a warp loop: the same scratch must stay clean
    // while the bands it feeds change width under it.
    let ref_cam = cam;
    let tgt_cam = Camera::new(
        cam.intrinsics,
        Pose::look_at(Vec3::new(0.45, 1.1, -2.6), Vec3::ZERO, Vec3::Y),
    );
    let reference = render_frame(&scene, &ref_cam, &MarchParams::default());
    let wopts = WarpOptions::default();
    let warp_seq = warp_frame(&reference, &ref_cam, &tgt_cam, scene.background(), &wopts);
    let mut scratch = WarpScratch::new();

    for cap in [0usize, 1, 2, 63, 3, 0, 63] {
        pool.set_cap(cap);
        let (frame, stats) =
            render_full_tiled(&model, &cam, &opts, &mut cicero_field::NullSink, &tile);
        assert_eq!(frame, seq_frame, "cap {cap}");
        assert_eq!(stats, seq_stats, "cap {cap}");
        let warped = warp_frame_with(
            &reference,
            &ref_cam,
            &tgt_cam,
            scene.background(),
            &wopts,
            &mut scratch,
            6,
        );
        assert_eq!(warped.frame, warp_seq.frame, "cap {cap}");
        assert_eq!(warped.status, warp_seq.status, "cap {cap}");
    }
    pool.set_cap(63);
}

/// The serve scheduler steps ready batches concurrently when given a host
/// thread budget; every budget must reproduce the serial (budget 0) service
/// report **exactly** — records, latencies, PSNR, cache counters, timeline.
#[test]
fn concurrent_multi_session_serving_matches_serial_stepping() {
    let lego = library::scene_by_name("lego").unwrap();
    let ship = library::scene_by_name("ship").unwrap();
    let models = [
        bake::bake_grid(
            &lego,
            &cicero_field::GridConfig {
                resolution: 24,
                ..Default::default()
            },
        ),
        bake::bake_grid(
            &ship,
            &cicero_field::GridConfig {
                resolution: 24,
                ..Default::default()
            },
        ),
    ];
    let scenes = [&lego, &ship];
    let trajs = [
        Trajectory::orbit(&lego, 8, 30.0),
        Trajectory::orbit(&ship, 8, 30.0),
    ];
    let k = Intrinsics::from_fov(24, 24, 0.9);

    let serve_with = |budget: usize| {
        let mut server = FrameServer::new(ServeConfig {
            render_threads: budget,
            ..Default::default()
        });
        // Six sessions over two scenes: co-located pairs share references,
        // QoS classes contend, offsets stagger the ready batches.
        for (i, (qos, scene_ix, offset)) in [
            (QosClass::Interactive, 0, 0.0),
            (QosClass::Standard, 0, 0.004),
            (QosClass::BestEffort, 0, 0.009),
            (QosClass::Interactive, 1, 0.002),
            (QosClass::Standard, 1, 0.006),
            (QosClass::Standard, 1, 0.013),
        ]
        .into_iter()
        .enumerate()
        {
            let spec = SessionSpec {
                name: format!("s{i}"),
                scene_key: if scene_ix == 0 { "lego" } else { "ship" }.into(),
                qos,
                start_offset_s: offset,
                config: PipelineConfig {
                    variant: Variant::Cicero,
                    window: 4,
                    march: MarchParams {
                        step: 0.05,
                        ..Default::default()
                    },
                    collect_quality: true, // PSNR equality ⇒ frames match too
                    collect_traffic: false,
                    ..Default::default()
                },
            };
            server
                .submit(
                    spec,
                    scenes[scene_ix],
                    &models[scene_ix],
                    &trajs[scene_ix],
                    k,
                )
                .unwrap();
        }
        server.run()
    };

    let serial = serve_with(0);
    assert_eq!(serial.frames, 6 * 8);
    for budget in [1, 2, 3, 8] {
        let par = serve_with(budget);
        assert_eq!(par.records, serial.records, "budget {budget}: records");
        assert_eq!(par.sessions, serial.sessions, "budget {budget}: sessions");
        assert_eq!(par.makespan_s, serial.makespan_s, "budget {budget}");
        assert_eq!(par.p50_latency_s, serial.p50_latency_s, "budget {budget}");
        assert_eq!(par.p99_latency_s, serial.p99_latency_s, "budget {budget}");
        assert_eq!(par.cache, serial.cache, "budget {budget}: cache stats");
        assert_eq!(
            par.reference_jobs, serial.reference_jobs,
            "budget {budget}: reference jobs"
        );
        assert_eq!(
            par.deadline_misses, serial.deadline_misses,
            "budget {budget}: deadline misses"
        );
    }
}

/// Every non-default policy must keep the serving core's determinism
/// contract on its own: placement, QoS degradation and prefetch decisions
/// may only consume simulated state, so the **entire** service report —
/// records, degradations, prefetch economics, cache counters — is
/// bit-identical at any host thread budget.
#[test]
fn non_default_policies_are_budget_deterministic() {
    let lego = library::scene_by_name("lego").unwrap();
    let ship = library::scene_by_name("ship").unwrap();
    let models = [
        bake::bake_grid(
            &lego,
            &cicero_field::GridConfig {
                resolution: 24,
                ..Default::default()
            },
        ),
        bake::bake_grid(
            &ship,
            &cicero_field::GridConfig {
                resolution: 24,
                ..Default::default()
            },
        ),
    ];
    let scenes = [&lego, &ship];
    let trajs = [
        Trajectory::orbit(&lego, 8, 30.0),
        Trajectory::orbit(&ship, 8, 30.0),
    ];
    let k = Intrinsics::from_fov(24, 24, 0.9);

    let policies_for = |name: &str| -> Policies {
        match name {
            "affinity" => Policies::default().with_placement(SceneAffinity { lanes: 2 }),
            "degrade" => Policies::default().with_qos(LoadAdaptiveDegrade {
                max_window: 16,
                min_resolution: 8,
            }),
            "prefetch" => Policies::default().with_prefetch(IdleWorkerPrefetch::default()),
            other => panic!("unknown policy {other}"),
        }
    };

    for policy in ["affinity", "degrade", "prefetch"] {
        let serve_with = |budget: usize| {
            let mut server = FrameServer::new(ServeConfig {
                render_threads: budget,
                policies: policies_for(policy),
                // Tight enough that the degrade ladder actually engages for
                // later sessions (and the default would reject them).
                admission: cicero_serve::AdmissionPolicy {
                    max_utilization: if policy == "degrade" { 0.012 } else { 0.85 },
                    ..Default::default()
                },
                ..Default::default()
            });
            let mut admitted = 0;
            for (i, (qos, scene_ix, offset)) in [
                (QosClass::Interactive, 0, 0.0),
                (QosClass::Standard, 0, 0.004),
                (QosClass::BestEffort, 0, 0.009),
                (QosClass::Interactive, 1, 0.002),
                (QosClass::Standard, 1, 0.006),
                (QosClass::Standard, 1, 0.013),
            ]
            .into_iter()
            .enumerate()
            {
                let spec = SessionSpec {
                    name: format!("s{i}"),
                    scene_key: if scene_ix == 0 { "lego" } else { "ship" }.into(),
                    qos,
                    start_offset_s: offset,
                    config: PipelineConfig {
                        variant: Variant::Cicero,
                        window: 4,
                        march: MarchParams {
                            step: 0.05,
                            ..Default::default()
                        },
                        collect_quality: true, // PSNR equality ⇒ frames match too
                        collect_traffic: false,
                        ..Default::default()
                    },
                };
                // Degrade mode intentionally saturates: rejections are fine,
                // they must simply be identical across budgets.
                if server
                    .submit(
                        spec,
                        scenes[scene_ix],
                        &models[scene_ix],
                        &trajs[scene_ix],
                        k,
                    )
                    .is_ok()
                {
                    admitted += 1;
                }
            }
            assert!(admitted >= 1, "{policy}: at least one session admitted");
            (admitted, server.run())
        };

        let (admitted, serial) = serve_with(0);
        assert_eq!(serial.frames, admitted * 8, "{policy}");
        match policy {
            // The exercised fixture must actually engage each policy.
            "degrade" => assert!(
                !serial.degradations.is_empty(),
                "degrade policy never engaged"
            ),
            "prefetch" => assert!(serial.prefetch_jobs > 0, "prefetch policy never engaged"),
            _ => {}
        }
        for budget in [1, 2, 3, 8] {
            let (_, par) = serve_with(budget);
            assert_eq!(par.records, serial.records, "{policy}: budget {budget}");
            assert_eq!(par.sessions, serial.sessions, "{policy}: budget {budget}");
            assert_eq!(par.makespan_s, serial.makespan_s, "{policy}: {budget}");
            assert_eq!(par.p50_latency_s, serial.p50_latency_s, "{policy}");
            assert_eq!(par.p99_latency_s, serial.p99_latency_s, "{policy}");
            assert_eq!(par.cache, serial.cache, "{policy}: budget {budget}");
            assert_eq!(par.reference_jobs, serial.reference_jobs, "{policy}");
            assert_eq!(par.prefetch_jobs, serial.prefetch_jobs, "{policy}");
            assert_eq!(par.degradations, serial.degradations, "{policy}");
            assert_eq!(par.deadline_misses, serial.deadline_misses, "{policy}");
        }
    }
}

#[test]
fn traffic_collection_is_deterministic_under_parallel_rendering() {
    // The memory simulators replay the gather stream; tile traces must hand
    // them the exact sequential order or the modeled timings would drift.
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &cicero_field::GridConfig {
            resolution: 20,
            ..Default::default()
        },
    );
    let traj = Trajectory::orbit(&scene, 4, 30.0);
    let k = Intrinsics::from_fov(24, 24, 0.9);
    for variant in [Variant::Cicero, Variant::Sparw] {
        let mut cfg = fast_cfg(variant, 1);
        cfg.collect_traffic = true;
        let seq = run_pipeline(&scene, &model, &traj, k, &cfg);
        cfg.render_threads = 4;
        let par = run_pipeline(&scene, &model, &traj, k, &cfg);
        assert_eq!(par.frames, seq.frames);
        for (p, s) in par.outcomes.iter().zip(&seq.outcomes) {
            assert_eq!(p.report.time_s, s.report.time_s, "{variant:?}");
            assert_eq!(
                p.report.energy.total(),
                s.report.energy.total(),
                "{variant:?}"
            );
        }
    }
}

/// Telemetry is **observe-only**: flipping the recorder on must not move a
/// single bit of output — frames, statistics, simulated timings or service
/// reports — at any host thread budget or sample-block size. Spans and
/// counters read the pipeline; nothing in the pipeline reads them back.
/// (ISSUE 6 acceptance: threads {1, 4} × blocks {1, 16}, on vs off.)
#[test]
fn telemetry_on_is_bit_identical_to_off() {
    let scene = library::scene_by_name("lego").unwrap();
    let model = bake::bake_grid(
        &scene,
        &cicero_field::GridConfig {
            resolution: 24,
            ..Default::default()
        },
    );
    let traj = Trajectory::orbit(&scene, 6, 30.0);
    let k = Intrinsics::from_fov(24, 24, 0.9);

    let pipeline_with = |threads: usize, block: usize| {
        let cfg = PipelineConfig {
            sample_block: block,
            ..fast_cfg(Variant::Cicero, threads)
        };
        run_pipeline(&scene, &model, &traj, k, &cfg)
    };
    let serve_with = |threads: usize, block: usize| {
        let mut server = FrameServer::new(ServeConfig {
            render_threads: threads,
            policies: Policies::default().with_prefetch(IdleWorkerPrefetch::default()),
            ..Default::default()
        });
        for (i, (qos, offset)) in [
            (QosClass::Interactive, 0.0),
            (QosClass::Standard, 0.004),
            (QosClass::BestEffort, 0.009),
        ]
        .into_iter()
        .enumerate()
        {
            let spec = SessionSpec {
                name: format!("t{i}"),
                scene_key: "lego".into(),
                qos,
                start_offset_s: offset,
                config: PipelineConfig {
                    collect_quality: true, // PSNR equality ⇒ frames match too
                    sample_block: block,
                    ..fast_cfg(Variant::Cicero, threads)
                },
            };
            server.submit(spec, &scene, &model, &traj, k).unwrap();
        }
        server.run()
    };

    let cam = Camera::new(
        Intrinsics::from_fov(33, 33, 0.9),
        Pose::look_at(Vec3::new(0.3, 1.2, -2.6), Vec3::ZERO, Vec3::Y),
    );
    let render_with = |threads: usize, block: usize| {
        let opts = RenderOptions {
            sample_block: block,
            ..Default::default()
        };
        let mut events: Vec<(u32, f32, u64)> = Vec::new();
        let mut sink = |ray: u32, t: f32, p: &GatherPlan| events.push((ray, t, p.bytes()));
        let (frame, stats) = render_full_tiled(
            &model,
            &cam,
            &opts,
            &mut sink,
            &TileOptions {
                threads,
                tile_rows: 8,
            },
        );
        (frame, stats, events)
    };

    for threads in [1usize, 4] {
        for block in [1usize, 16] {
            assert!(!telemetry::is_enabled());
            let render_off = render_with(threads, block);
            let pipe_off = pipeline_with(threads, block);
            let serve_off = serve_with(threads, block);

            telemetry::enable();
            let render_on = render_with(threads, block);
            let pipe_on = pipeline_with(threads, block);
            let serve_on = serve_with(threads, block);
            let events = telemetry::event_count();
            telemetry::disable();
            telemetry::reset();

            assert!(
                events > 0,
                "{threads}t/{block}b: telemetry recorded nothing"
            );
            assert_eq!(
                render_on.0, render_off.0,
                "{threads}t/{block}b: telemetry moved a rendered pixel"
            );
            assert_eq!(
                render_on.1, render_off.1,
                "{threads}t/{block}b: telemetry moved RenderStats"
            );
            assert_eq!(
                render_on.2, render_off.2,
                "{threads}t/{block}b: telemetry moved the sink stream"
            );
            assert_eq!(
                pipe_on.frames, pipe_off.frames,
                "{threads}t/{block}b: telemetry moved a pipeline frame"
            );
            assert_eq!(pipe_on.warp_totals, pipe_off.warp_totals);
            for (on, off) in pipe_on.outcomes.iter().zip(&pipe_off.outcomes) {
                assert_eq!(
                    on.report.time_s, off.report.time_s,
                    "{threads}t/{block}b: telemetry drifted simulated time"
                );
            }
            assert_eq!(
                serve_on, serve_off,
                "{threads}t/{block}b: telemetry moved the service report"
            );
        }
    }
}
