//! The batched SoA sample engine must be **bit-identical** to the scalar
//! marcher — frames, [`RenderStats`], sink sample streams and whole pipeline
//! runs — at every block size, for every scene, model family and variant.
//! This is the contract that makes `sample_block` a pure throughput knob
//! (like `render_threads`): experiment reproducibility, the serve layer's
//! digests and the simulated timelines all rely on it.
//!
//! Block sizes cover the degenerate case (1 = the scalar path itself), a
//! non-divisor size (3, so full blocks end mid-ray and band tails are
//! ragged), the default (16) and an oversized block (64, most rays fit in
//! one flush and band-end tails dominate).

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::Variant;
use cicero_field::render::{render_full, render_masked};
use cicero_field::{
    bake, GatherPlan, GridConfig, HashConfig, NerfModel, NullSink, RenderOptions, TensorConfig,
};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use cicero_scene::library;
use cicero_scene::volume::MarchParams;
use cicero_scene::Trajectory;

const BLOCK_SIZES: [usize; 4] = [1, 3, 16, 64];

fn bench_camera() -> Camera {
    Camera::new(
        // Odd size: the last block of a band is always a ragged tail.
        Intrinsics::from_fov(33, 33, 0.9),
        Pose::look_at(Vec3::new(0.3, 1.2, -2.6), Vec3::ZERO, Vec3::Y),
    )
}

fn model_for(scene_name: &str) -> Box<dyn NerfModel> {
    let scene = library::scene_by_name(scene_name).unwrap();
    // One family per scene keeps the matrix affordable while covering every
    // encoding's block kernel: dense grid, multi-level hash, VM tensor.
    match scene_name {
        "lego" => Box::new(bake::bake_grid(
            &scene,
            &GridConfig {
                resolution: 24,
                ..Default::default()
            },
        )),
        "chair" => Box::new(bake::bake_hash(
            &scene,
            &HashConfig {
                levels: 4,
                base_resolution: 4,
                max_resolution: 24,
                table_size_log2: 10,
                ..Default::default()
            },
        )),
        _ => Box::new(bake::bake_tensor(
            &scene,
            &TensorConfig {
                resolution: 24,
                ..Default::default()
            },
        )),
    }
}

#[test]
fn batched_render_is_bit_identical_across_scenes_models_and_block_sizes() {
    for scene_name in ["lego", "chair", "ship"] {
        let model = model_for(scene_name);
        let model = model.as_ref();
        let cam = bench_camera();
        let collect = |block: usize| {
            let opts = RenderOptions {
                sample_block: block,
                ..Default::default()
            };
            let mut events: Vec<(u32, f32, u64, u64)> = Vec::new();
            let mut sink = |ray: u32, t: f32, p: &GatherPlan| {
                events.push((ray, t, p.bytes(), p.entry_reads()))
            };
            let (frame, stats) = render_full(model, &cam, &opts, &mut sink);
            (frame, stats, events)
        };
        let (seq_frame, seq_stats, seq_events) = collect(1);
        assert!(
            seq_stats.samples_processed > 0,
            "{scene_name}: empty render"
        );
        for block in BLOCK_SIZES {
            let (frame, stats, events) = collect(block);
            assert_eq!(frame, seq_frame, "{scene_name}: frame, block {block}");
            assert_eq!(stats, seq_stats, "{scene_name}: stats, block {block}");
            assert_eq!(
                events, seq_events,
                "{scene_name}: sink stream, block {block}"
            );
        }
    }
}

#[test]
fn batched_masked_render_matches_scalar() {
    // Sparse (SPARW crack-fill style) renders: the mask skips pixels, so
    // blocks pack samples of non-adjacent rays.
    let model = model_for("lego");
    let model = model.as_ref();
    let cam = bench_camera();
    let (w, h) = (33usize, 33usize);
    let mut mask = vec![false; w * h];
    for (i, m) in mask.iter_mut().enumerate() {
        *m = i % 5 == 0 || i % 7 == 0;
    }
    let render = |block: usize| {
        let opts = RenderOptions {
            sample_block: block,
            ..Default::default()
        };
        let mut frame =
            cicero_scene::ground_truth::background_frame(&cicero_field::ModelSource(model), w, h);
        let stats = render_masked(model, &cam, &opts, Some(&mask), &mut frame, &mut NullSink);
        (frame, stats)
    };
    let (seq_frame, seq_stats) = render(1);
    for block in BLOCK_SIZES {
        let (frame, stats) = render(block);
        assert_eq!(frame, seq_frame, "masked frame, block {block}");
        assert_eq!(stats, seq_stats, "masked stats, block {block}");
    }
}

#[test]
fn pipeline_runs_are_block_size_invariant_including_traffic() {
    // Whole-pipeline equality under SPARW and Cicero with the traffic
    // simulators attached: the memory-trace sinks observe the per-sample
    // gather stream, so this asserts the stream (not just the frames) is
    // unchanged by batching. Simulated reports must match to the bit.
    for scene_name in ["lego", "ship"] {
        let scene = library::scene_by_name(scene_name).unwrap();
        let model = model_for(scene_name);
        let model = model.as_ref();
        let traj = Trajectory::orbit(&scene, 4, 40.0);
        let k = Intrinsics::from_fov(24, 24, 0.9);
        for variant in [Variant::Sparw, Variant::Cicero] {
            let run_with = |block: usize| {
                let cfg = PipelineConfig {
                    variant,
                    window: 3,
                    march: MarchParams {
                        step: 0.05,
                        ..Default::default()
                    },
                    collect_quality: false,
                    collect_traffic: true,
                    sample_block: block,
                    ..Default::default()
                };
                run_pipeline(&scene, model, &traj, k, &cfg)
            };
            let base = run_with(1);
            for block in [3usize, 16] {
                let run = run_with(block);
                assert_eq!(
                    run.frames, base.frames,
                    "{scene_name}/{variant:?}: frames, block {block}"
                );
                assert_eq!(
                    run.warp_totals, base.warp_totals,
                    "{scene_name}/{variant:?}: warp stats, block {block}"
                );
                assert_eq!(run.outcomes.len(), base.outcomes.len());
                for (a, b) in run.outcomes.iter().zip(&base.outcomes) {
                    assert_eq!(
                        a.report, b.report,
                        "{scene_name}/{variant:?}: report, block {block}"
                    );
                }
            }
        }
    }
}
