//! Property-based tests on cross-crate invariants (proptest).

use cicero::{warp_frame, WarpOptions};
use cicero_math::{Camera, Intrinsics, Pose, Vec3};
use cicero_mem::{belady_misses, DramConfig, DramSim, LruCache, MVoxelConfig, MVoxelPartition};
use cicero_scene::ground_truth::render_frame;
use cicero_scene::volume::{march_ray_auto, MarchParams};
use cicero_scene::{Material, RadianceSource, SceneBuilder, Shape};
use proptest::prelude::*;

fn small_scene(radius: f32) -> cicero_scene::AnalyticScene {
    SceneBuilder::new("prop")
        .object(
            Shape::Sphere { radius },
            Vec3::ZERO,
            Material::solid(Vec3::ONE),
        )
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Composited radiance never exceeds the sources' maximum and the
    /// transmittance stays within [0, 1].
    #[test]
    fn volume_rendering_bounds(
        radius in 0.2f32..1.2,
        ox in -0.5f32..0.5,
        oy in -0.5f32..0.5,
    ) {
        let scene = small_scene(radius);
        let ray = cicero_math::Ray::new(Vec3::new(ox, oy, -4.0), Vec3::Z);
        let r = march_ray_auto(&scene, &ray, &MarchParams::default());
        prop_assert!(r.transmittance >= 0.0 && r.transmittance <= 1.0);
        // Radiance is bounded by the brightest shading possible (~emissive +
        // ambient + diffuse + specular ≤ ~2) plus background.
        prop_assert!(r.color.max_element() <= 3.0);
        prop_assert!(r.color.min_element() >= 0.0);
        if r.depth_t.is_finite() {
            // Depth lies within the ray's bounds crossing.
            let (t0, t1) = scene.bounds().intersect(&ray).unwrap();
            prop_assert!(r.depth_t >= t0 - 1e-3 && r.depth_t <= t1 + 1e-3);
        }
    }

    /// Warping conserves pixel classification: every target pixel is counted
    /// exactly once, and identity warps never disocclude.
    #[test]
    fn warp_partition_property(dx in -0.3f32..0.3, dy in -0.15f32..0.15) {
        let scene = small_scene(0.8);
        let k = Intrinsics::from_fov(32, 32, 0.9);
        let cam0 = Camera::new(k, Pose::look_at(Vec3::new(0.0, 0.2, -3.0), Vec3::ZERO, Vec3::Y));
        let cam1 = Camera::new(
            k,
            Pose::look_at(Vec3::new(dx, 0.2 + dy, -3.0), Vec3::ZERO, Vec3::Y),
        );
        let reference = render_frame(&scene, &cam0, &MarchParams::default());
        let result = warp_frame(&reference, &cam0, &cam1, scene.background(), &WarpOptions::default());
        let s = result.stats();
        prop_assert_eq!(s.total, (32 * 32) as u64);
        prop_assert_eq!(s.total, s.warped + s.disoccluded + s.void_pixels + s.rejected);
        // Mask agrees with stats.
        let mask_count = result.render_mask().iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(mask_count, s.disoccluded + s.rejected);
    }

    /// The Belady oracle never misses more than LRU on the same trace.
    #[test]
    fn belady_dominates_lru(seed in 0u64..1000) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D) % 64
        };
        let trace: Vec<u64> = (0..600).map(|_| next()).collect();
        let opt = belady_misses(&trace, 16);
        let mut lru = LruCache::new(16 * 64, 64, 16);
        for &l in &trace {
            lru.access(l * 64);
        }
        prop_assert!(opt.misses <= lru.stats().misses);
        // Both policies at least pay the compulsory misses.
        let distinct = {
            let mut v = trace.clone();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        prop_assert!(opt.misses >= distinct.min(16));
    }

    /// DRAM accounting: bytes moved ≥ bytes asked for, and a pure stream is
    /// never slower than the same bytes random.
    #[test]
    fn dram_accounting_invariants(reads in prop::collection::vec((0u64..1_000_000, 1u32..200), 1..60)) {
        let mut random_sim = DramSim::new(DramConfig::default());
        let mut stream_sim = DramSim::new(DramConfig::default());
        let mut total: u64 = 0;
        for &(addr, bytes) in &reads {
            random_sim.read(addr * 7919, bytes);
            total += bytes as u64;
        }
        stream_sim.read_streaming(total);
        prop_assert!(random_sim.stats().total_bytes() >= random_sim.stats().useful_bytes);
        prop_assert!(stream_sim.time_seconds() <= random_sim.time_seconds() + 1e-12);
        prop_assert!(stream_sim.energy_joules() <= random_sim.energy_joules() + 1e-15);
    }

    /// MVoxel partitions cover every vertex exactly once.
    #[test]
    fn mvoxel_partition_is_total(
        nx in 1u32..40,
        ny in 1u32..40,
        nz in 1u32..40,
        dim in 1u32..12,
    ) {
        let part = MVoxelPartition::new(
            [nx, ny, nz],
            MVoxelConfig { dims: [dim, dim, dim] },
            16,
        );
        let mut per_block = vec![0u64; part.mvoxel_count()];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    per_block[part.mvoxel_of_vertex([x, y, z])] += 1;
                }
            }
        }
        for (id, &count) in per_block.iter().enumerate() {
            prop_assert_eq!(count, part.vertex_count(id), "block {}", id);
        }
        let total: u64 = per_block.iter().sum();
        prop_assert_eq!(total, (nx as u64) * (ny as u64) * (nz as u64));
    }
}

// ---------------------------------------------------------------------------
// Keyed-draw machinery (shared by FaultPlan and the traffic generators)
// ---------------------------------------------------------------------------

use cicero_serve::{keyed_draw, keyed_unit, FaultKind, FaultPlan};

const ALL_KINDS: [FaultKind; 7] = [
    FaultKind::WorkerCrash,
    FaultKind::Straggler,
    FaultKind::CacheCorruption,
    FaultKind::PoseStall,
    FaultKind::PoseDrop,
    FaultKind::ShardCrash,
    FaultKind::ShardBrownout,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A keyed draw is a pure function of `(seed, tag, key)`: asking the
    /// same question twice — in any order, from any thread — returns the
    /// same answer, and the unit draw always lands in `[0, 1)`.
    #[test]
    fn keyed_draws_are_idempotent_and_unit_bounded(
        seed in 0u64..u64::MAX,
        tag in 0u64..256,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u64..u64::MAX,
    ) {
        prop_assert_eq!(keyed_draw(seed, tag, a, b, c), keyed_draw(seed, tag, a, b, c));
        let u = keyed_unit(seed, tag, a, b, c);
        prop_assert_eq!(u, keyed_unit(seed, tag, a, b, c));
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// `FaultPlan::fires` is idempotent and **rate-monotone**: every
    /// decision that fires at a lower rate still fires at any higher rate
    /// under the same seed (the threshold moves, the draw does not), with
    /// rate 0 never firing and rate 1 always firing.
    #[test]
    fn fault_fires_is_idempotent_and_rate_monotone(
        seed in 0u64..u64::MAX,
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
        a in 0u64..64,
        b in 0u64..64,
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let low = FaultPlan::with_rate(seed, lo);
        let high = FaultPlan::with_rate(seed, hi);
        for kind in ALL_KINDS {
            let fired = low.fires(kind, a, b, 0);
            prop_assert_eq!(fired, low.fires(kind, a, b, 0));
            if fired {
                prop_assert!(
                    high.fires(kind, a, b, 0),
                    "{}: fired at rate {} but not at {}",
                    kind.label(), lo, hi
                );
            }
            prop_assert!(!FaultPlan::with_rate(seed, 0.0).fires(kind, a, b, 0));
            // `with_rate` keeps pose drops at rate/4, so rate 4 is the
            // point where every kind's effective rate saturates at 1.
            prop_assert!(FaultPlan::with_rate(seed, 4.0).fires(kind, a, b, 0));
        }
    }

    /// Seed sensitivity: two different seeds disagree on at least one draw
    /// in a small key window — schedules are decorrelated, not shifted
    /// copies of each other.
    #[test]
    fn keyed_draws_are_seed_sensitive(
        seed in 0u64..u64::MAX,
        delta in 1u64..1_000_000,
        tag in 0u64..256,
    ) {
        let other = seed.wrapping_add(delta);
        let differs = (0u64..64).any(|k| keyed_draw(seed, tag, k, 0, 0) != keyed_draw(other, tag, k, 0, 0));
        prop_assert!(differs, "seeds {} and {} agree on 64 consecutive draws", seed, other);
    }

    /// Tag separation: the domains sharing one seed (fault tags 1–7,
    /// traffic tags 101+) never alias — distinct tags give distinct
    /// streams over a small key window.
    #[test]
    fn keyed_draw_tags_are_domain_separated(
        seed in 0u64..u64::MAX,
        a in 0u64..u64::MAX,
    ) {
        let tags = [1u64, 2, 3, 4, 5, 6, 7, 101, 102, 103, 104, 105, 106, 107];
        for (i, &ta) in tags.iter().enumerate() {
            for &tb in &tags[i + 1..] {
                let differs = (0u64..16).any(|k| {
                    keyed_draw(seed, ta, a.wrapping_add(k), 0, 0)
                        != keyed_draw(seed, tb, a.wrapping_add(k), 0, 0)
                });
                prop_assert!(differs, "tags {} and {} alias under seed {}", ta, tb, seed);
            }
        }
    }
}
