//! Warp gallery: writes the paper's Fig. 9 image triplet — reference frame,
//! naive warp (with disocclusion holes), and the SPARW result — as PPM files.
//!
//! ```sh
//! cargo run --release --example warp_gallery
//! # view results/gallery_*.ppm with any image viewer
//! ```
//!
//! Artifacts land under `results/` (gitignored), keeping the repository root
//! to manifests and docs.

use cicero::{warp_frame, PixelSource, WarpOptions};
use cicero_field::render::{render_full, render_masked, RenderOptions};
use cicero_field::{bake, GridConfig, NerfModel, NullSink};
use cicero_math::{Intrinsics, Vec3};
use cicero_scene::{library, Trajectory};

fn main() -> std::io::Result<()> {
    let scene = library::scene_by_name("chair").expect("library scene");
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 80,
            ..Default::default()
        },
    );
    let k = Intrinsics::from_fov(160, 160, 0.9);
    let traj = Trajectory::orbit(&scene, 12, 5.0); // brisk motion → visible holes
    let cam_ref = traj.camera(0, k);
    let cam_tgt = traj.camera(8, k);
    let opts = RenderOptions::default();

    let (reference, _) = render_full(&model, &cam_ref, &opts, &mut NullSink);
    let warped = warp_frame(
        &reference,
        &cam_ref,
        &cam_tgt,
        model.background(),
        &WarpOptions::default(),
    );
    let stats = warped.stats();

    // Paint disocclusions magenta in the "naive" image so holes are visible.
    let mut naive = warped.frame.clone();
    for (i, s) in warped.status.iter().enumerate() {
        if *s == PixelSource::Disoccluded {
            let (x, y) = (i % 160, i / 160);
            *naive.color.get_mut(x, y) = Vec3::new(1.0, 0.0, 1.0);
        }
    }

    let mask = warped.render_mask();
    let mut sparw = warped.frame;
    render_masked(
        &model,
        &cam_tgt,
        &opts,
        Some(&mask),
        &mut sparw,
        &mut NullSink,
    );

    std::fs::create_dir_all("results")?;
    reference.color.write_ppm("results/gallery_reference.ppm")?;
    naive.color.write_ppm("results/gallery_naive_warp.ppm")?;
    sparw.color.write_ppm("results/gallery_sparw.ppm")?;

    println!(
        "wrote results/gallery_reference.ppm, results/gallery_naive_warp.ppm, results/gallery_sparw.ppm"
    );
    println!(
        "target frame: {:.1}% warped, {:.1}% void, {:.2}% disoccluded (magenta)",
        stats.warped as f64 / stats.total as f64 * 100.0,
        stats.void_pixels as f64 / stats.total as f64 * 100.0,
        stats.disoccluded as f64 / stats.total as f64 * 100.0,
    );
    Ok(())
}
