//! VR headset scenario: handheld 6-DoF head motion at 60 FPS rendered with
//! every pipeline variant on the local SoC — the paper's Fig. 19a situation.
//!
//! ```sh
//! cargo run --release --example vr_headset
//! ```

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::Variant;
use cicero_field::{bake, GridConfig};
use cicero_math::Intrinsics;
use cicero_scene::{library, Trajectory, TrajectoryKind};

fn main() {
    let scene = library::scene_by_name("chair").expect("library scene");
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    // 60 FPS handheld head motion, seed-controlled shake.
    let traj = Trajectory::generate(&scene, 24, 60.0, TrajectoryKind::Handheld, 42);
    let intrinsics = Intrinsics::from_fov(96, 96, 1.1);

    println!(
        "VR trace: {} frames at {} FPS, mean pose delta {:.4}",
        traj.len(),
        traj.fps(),
        traj.mean_frame_delta()
    );
    println!(
        "\n{:<10} {:>9} {:>12} {:>9}",
        "variant", "FPS", "energy (mJ)", "PSNR dB"
    );

    let mut base_fps = 0.0;
    for variant in Variant::ALL {
        let cfg = PipelineConfig {
            variant,
            window: 8,
            ..Default::default()
        };
        let run = run_pipeline(&scene, &model, &traj, intrinsics, &cfg);
        if variant == Variant::Baseline {
            base_fps = run.mean_fps();
        }
        println!(
            "{:<10} {:>9.2} {:>12.1} {:>9.2}",
            variant.label(),
            run.mean_fps(),
            run.mean_energy() * 1e3,
            run.mean_psnr()
        );
    }
    println!("\n(baseline {base_fps:.2} FPS — the ladder above is the paper's Fig. 19a shape)");
}
