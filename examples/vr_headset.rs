//! VR headset scenario: handheld 6-DoF head motion at 60 FPS rendered with
//! every pipeline variant on the local SoC — the paper's Fig. 19a situation —
//! then served live through the `cicero-serve` scheduler with overload
//! control armed, the way a headset actually talks to the runtime.
//!
//! ```text
//! cargo run --release --example vr_headset [-- --scene NAME] [--frames N]
//! ```
//!
//! Every fallible path routes an error instead of panicking: CLI mistakes
//! exit through `usage`, runtime failures (an unknown scene, a refused
//! serve call) through `fail` — the serve API returns [`ServeError`]
//! everywhere precisely so a client binary never dies on a backtrace.

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::Variant;
use cicero_field::{bake, GridConfig};
use cicero_math::Intrinsics;
use cicero_scene::{library, Trajectory, TrajectoryKind};
use cicero_serve::{FrameServer, OverloadControl, QosClass, ServeConfig, ServeError, SessionSpec};

/// A CLI mistake is the *user's* error, not a pipeline fault: explain and
/// exit instead of panicking with a backtrace.
fn usage(msg: &str) -> ! {
    eprintln!("vr_headset: {msg}");
    eprintln!("usage: vr_headset [--scene NAME] [--frames N]");
    std::process::exit(2);
}

/// A runtime failure (an unknown scene, a rejected serve call) surfaces as
/// a message and a nonzero exit, never a panic.
fn fail(context: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("vr_headset: {context}: {e}");
    std::process::exit(1);
}

struct Args {
    scene: String,
    frames: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scene: "chair".into(),
        frames: 24,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scene" => {
                args.scene = it.next().unwrap_or_else(|| usage("--scene takes a name"));
            }
            "--frames" => {
                args.frames = it
                    .next()
                    .unwrap_or_else(|| usage("--frames takes a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--frames must be a number"));
                if args.frames == 0 {
                    usage("--frames must be at least 1");
                }
            }
            other => usage(&format!("unexpected argument {other}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let scene = library::scene_by_name(&args.scene)
        .unwrap_or_else(|| fail("loading scene", format!("unknown scene {:?}", args.scene)));
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    // 60 FPS handheld head motion, seed-controlled shake.
    let traj = Trajectory::generate(&scene, args.frames, 60.0, TrajectoryKind::Handheld, 42);
    let intrinsics = Intrinsics::from_fov(96, 96, 1.1);

    println!(
        "VR trace: {} frames at {} FPS, mean pose delta {:.4}",
        traj.len(),
        traj.fps(),
        traj.mean_frame_delta()
    );
    println!(
        "\n{:<10} {:>9} {:>12} {:>9}",
        "variant", "FPS", "energy (mJ)", "PSNR dB"
    );

    let mut base_fps = 0.0;
    for variant in Variant::ALL {
        let cfg = PipelineConfig {
            variant,
            window: 8,
            ..Default::default()
        };
        let run = run_pipeline(&scene, &model, &traj, intrinsics, &cfg);
        if variant == Variant::Baseline {
            base_fps = run.mean_fps();
        }
        println!(
            "{:<10} {:>9.2} {:>12.1} {:>9.2}",
            variant.label(),
            run.mean_fps(),
            run.mean_energy() * 1e3,
            run.mean_psnr()
        );
    }
    println!("\n(baseline {base_fps:.2} FPS — the ladder above is the paper's Fig. 19a shape)");

    // The same headset, served: a live interactive session streamed
    // pose-by-pose through the scheduler with overload control armed. A
    // lone headset always fits, but the match is the client idiom —
    // explicit backpressure is an error value to branch on, not a crash.
    let mut server = FrameServer::new(ServeConfig {
        overload: Some(OverloadControl::default()),
        ..Default::default()
    });
    let spec = SessionSpec {
        name: format!("{}-headset", args.scene),
        scene_key: args.scene.clone(),
        qos: QosClass::Interactive,
        start_offset_s: 0.0,
        config: PipelineConfig {
            variant: Variant::Cicero,
            window: 8,
            ..Default::default()
        },
    };
    let id = match server.submit_stream(spec, &scene, &model, traj.fps(), intrinsics) {
        Ok(id) => id,
        Err(ServeError::Overloaded { retry_after_s }) => {
            fail(
                "headset session pushed back",
                format!("server overloaded; retry after {retry_after_s}s"),
            );
        }
        Err(e) => fail("headset session rejected", e),
    };
    for pose in traj.poses() {
        server
            .push_pose(id, *pose)
            .unwrap_or_else(|e| fail("streamed pose refused", e));
    }
    server
        .close_stream(id)
        .unwrap_or_else(|e| fail("stream close refused", e));
    let report = server.run();
    println!(
        "\nserved live: {} frames, p99 latency {:.2} ms, {} deadline misses",
        report.frames,
        report.p99_latency_s * 1e3,
        report.deadline_misses
    );
}
