//! Remote rendering: reference frames render on a tethered workstation GPU
//! while the headset warps and sparse-renders locally — the paper's Fig. 19b
//! scenario, including the window sweep of Fig. 22b.
//!
//! ```sh
//! cargo run --release --example remote_offload
//! ```

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::{Scenario, Variant};
use cicero_field::{bake, GridConfig};
use cicero_math::Intrinsics;
use cicero_scene::{library, Trajectory};

fn main() {
    let scene = library::scene_by_name("mic").expect("library scene");
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    let intrinsics = Intrinsics::from_fov(96, 96, 0.9);

    println!("remote offload: reference NeRF on the workstation, warping on device\n");
    println!(
        "{:>7} {:>10} {:>14} {:>9}",
        "window", "FPS", "device mJ/frame", "PSNR dB"
    );
    for window in [2usize, 4, 8, 16] {
        let traj = Trajectory::orbit(&scene, window * 2 + 2, 30.0);
        let cfg = PipelineConfig {
            variant: Variant::Cicero,
            scenario: Scenario::Remote,
            window,
            ..Default::default()
        };
        let run = run_pipeline(&scene, &model, &traj, intrinsics, &cfg);
        println!(
            "{:>7} {:>10.2} {:>14.2} {:>9.2}",
            window,
            run.mean_fps(),
            run.mean_energy() * 1e3,
            run.mean_psnr()
        );
    }
    println!("\nLarger windows hide more of the remote render latency (Fig. 22b)");
    println!("but ship fewer reference pixels per frame (lower wireless energy).");
}
