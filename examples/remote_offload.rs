//! Remote rendering: reference frames render on a tethered workstation GPU
//! while the headset warps and sparse-renders locally — the paper's Fig. 19b
//! scenario, including the window sweep of Fig. 22b — then the swept-out
//! winner served as a live remote session through the scheduler.
//!
//! ```text
//! cargo run --release --example remote_offload [-- --scene NAME]
//! ```
//!
//! Every fallible path routes an error instead of panicking: CLI mistakes
//! exit through `usage`, runtime failures (an unknown scene, a refused
//! serve call) through `fail` — the serve API returns [`ServeError`]
//! everywhere precisely so a client binary never dies on a backtrace.

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::{Scenario, Variant};
use cicero_field::{bake, GridConfig};
use cicero_math::Intrinsics;
use cicero_scene::{library, Trajectory};
use cicero_serve::{FrameServer, QosClass, ServeConfig, SessionSpec};

/// A CLI mistake is the *user's* error, not a pipeline fault: explain and
/// exit instead of panicking with a backtrace.
fn usage(msg: &str) -> ! {
    eprintln!("remote_offload: {msg}");
    eprintln!("usage: remote_offload [--scene NAME]");
    std::process::exit(2);
}

/// A runtime failure (an unknown scene, a rejected serve call) surfaces as
/// a message and a nonzero exit, never a panic.
fn fail(context: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("remote_offload: {context}: {e}");
    std::process::exit(1);
}

fn parse_args() -> String {
    let mut scene = "mic".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scene" => {
                scene = it.next().unwrap_or_else(|| usage("--scene takes a name"));
            }
            other => usage(&format!("unexpected argument {other}")),
        }
    }
    scene
}

fn main() {
    let scene_name = parse_args();
    let scene = library::scene_by_name(&scene_name)
        .unwrap_or_else(|| fail("loading scene", format!("unknown scene {scene_name:?}")));
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    let intrinsics = Intrinsics::from_fov(96, 96, 0.9);

    println!("remote offload: reference NeRF on the workstation, warping on device\n");
    println!(
        "{:>7} {:>10} {:>14} {:>9}",
        "window", "FPS", "device mJ/frame", "PSNR dB"
    );
    let mut best_window = 2usize;
    let mut best_fps = 0.0;
    for window in [2usize, 4, 8, 16] {
        let traj = Trajectory::orbit(&scene, window * 2 + 2, 30.0);
        let cfg = PipelineConfig {
            variant: Variant::Cicero,
            scenario: Scenario::Remote,
            window,
            ..Default::default()
        };
        let run = run_pipeline(&scene, &model, &traj, intrinsics, &cfg);
        if run.mean_fps() > best_fps {
            best_fps = run.mean_fps();
            best_window = window;
        }
        println!(
            "{:>7} {:>10.2} {:>14.2} {:>9.2}",
            window,
            run.mean_fps(),
            run.mean_energy() * 1e3,
            run.mean_psnr()
        );
    }
    println!("\nLarger windows hide more of the remote render latency (Fig. 22b)");
    println!("but ship fewer reference pixels per frame (lower wireless energy).");

    // Serve the sweep's best window as a live remote session: the same
    // client, now going through admission and the batch scheduler, with
    // every serve call routed through `ServeError` instead of a panic.
    let mut server = FrameServer::new(ServeConfig::default());
    let traj = Trajectory::orbit(&scene, best_window * 2 + 2, 30.0);
    let spec = SessionSpec {
        name: format!("{scene_name}-remote"),
        scene_key: scene_name.clone(),
        qos: QosClass::Standard,
        start_offset_s: 0.0,
        config: PipelineConfig {
            variant: Variant::Cicero,
            scenario: Scenario::Remote,
            window: best_window,
            ..Default::default()
        },
    };
    server
        .submit(spec, &scene, &model, &traj, intrinsics)
        .unwrap_or_else(|e| fail("remote session rejected", e));
    let report = server.run();
    println!(
        "\nserved live at window {best_window}: {} frames, p99 latency {:.2} ms, {} deadline misses",
        report.frames,
        report.p99_latency_s * 1e3,
        report.deadline_misses
    );
}
