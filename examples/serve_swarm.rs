//! `serve_swarm` — a fleet of heterogeneous clients on one SoC pool.
//!
//! Spins up dozens of concurrent sessions across several library scenes —
//! head-tracked interactive viewers, standard screen viewers and best-effort
//! preview exporters, mixing the paper's Local and Remote scenarios — and
//! drains them through the `cicero-serve` batch scheduler. Co-located
//! sessions share reference renders through the pose-quantized cache.
//!
//! Run with `cargo run --release --example serve_swarm [-- THREADS]`.
//! `THREADS` is the server's total host thread budget (default: the
//! `RENDER_THREADS` environment variable, then 1): ready sessions step
//! **concurrently** on the persistent render pool, with the budget
//! partitioned across each batch. The swarm demo therefore doubles as a
//! host-scaling demo — the service report is bit-identical at any budget
//! (the `digest:` line below is CI's determinism oracle between the
//! 1-thread and 4-thread legs), only the wall-clock frames/sec moves.

use cicero::pipeline::PipelineConfig;
use cicero::{Scenario, Variant};
use cicero_accel::pool::PoolConfig;
use cicero_field::{bake, GridConfig, GridModel};
use cicero_math::Intrinsics;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, AnalyticScene, Trajectory};
use cicero_serve::{FrameServer, QosClass, ServeConfig, SessionSpec};

const SCENES: [&str; 4] = ["lego", "chair", "ship", "hotdog"];
const VIEWERS_PER_SCENE: usize = 6; // 4 scenes × 6 = 24 sessions
const FRAMES: usize = 12;
const FPS: f32 = 30.0;

struct SceneAssets {
    name: &'static str,
    scene: AnalyticScene,
    model: GridModel,
    orbit: Trajectory,
    handheld: Trajectory,
}

fn main() {
    let render_threads: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("usage: serve_swarm [render-threads]"))
        .unwrap_or_else(cicero_field::env_render_threads)
        .max(1);
    println!("==========================================================");
    println!(
        "serve_swarm: {} sessions over {} scenes, {} render thread(s)",
        SCENES.len() * VIEWERS_PER_SCENE,
        SCENES.len(),
        render_threads
    );
    println!("==========================================================");

    let assets: Vec<SceneAssets> = SCENES
        .iter()
        .map(|&name| {
            let scene = library::scene_by_name(name).unwrap();
            let model = bake::bake_grid(
                &scene,
                &GridConfig {
                    resolution: 28,
                    ..Default::default()
                },
            );
            let orbit = Trajectory::orbit(&scene, FRAMES, FPS);
            let handheld = Trajectory::handheld(&scene, FRAMES, FPS, 7);
            SceneAssets {
                name,
                scene,
                model,
                orbit,
                handheld,
            }
        })
        .collect();

    let mut server = FrameServer::new(ServeConfig {
        pool: PoolConfig {
            workers: 6,
            ..Default::default()
        },
        render_threads,
        ..Default::default()
    });

    // Six viewers per scene: two interactive head-tracked clients on the
    // same handheld path (cache sharing), three standard orbit viewers, one
    // best-effort remote exporter.
    for (si, a) in assets.iter().enumerate() {
        for v in 0..VIEWERS_PER_SCENE {
            let (qos, scenario, traj): (QosClass, Scenario, &Trajectory) = match v {
                0 | 1 => (QosClass::Interactive, Scenario::Local, &a.handheld),
                2 | 3 => (QosClass::Standard, Scenario::Local, &a.orbit),
                4 => (QosClass::Standard, Scenario::Remote, &a.orbit),
                _ => (QosClass::BestEffort, Scenario::Remote, &a.orbit),
            };
            let spec = SessionSpec {
                name: format!("{}-{}-{}", a.name, qos.label(), v),
                scene_key: a.name.to_string(),
                qos,
                // Stagger connections a little within each scene.
                start_offset_s: si as f64 * 0.002 + v as f64 * 0.005,
                config: PipelineConfig {
                    variant: if v % 2 == 0 {
                        Variant::Cicero
                    } else {
                        Variant::SparwFs
                    },
                    scenario,
                    window: if qos == QosClass::Interactive { 4 } else { 6 },
                    march: MarchParams {
                        step: 0.04,
                        ..Default::default()
                    },
                    collect_quality: true,
                    collect_traffic: false,
                    ..Default::default()
                },
            };
            server
                .submit(
                    spec,
                    &a.scene,
                    &a.model,
                    traj,
                    Intrinsics::from_fov(32, 32, 0.9),
                )
                .expect("swarm session admitted");
        }
    }

    // Admission control in action: a 90 fps 640×640 baseline flood does not
    // fit next to the committed swarm.
    let flood = SessionSpec {
        name: "flood".into(),
        scene_key: "lego".into(),
        qos: QosClass::Interactive,
        start_offset_s: 0.0,
        config: PipelineConfig {
            variant: Variant::Baseline,
            ..Default::default()
        },
    };
    let flood_traj = Trajectory::orbit(&assets[0].scene, FRAMES, 90.0);
    match server.submit(
        flood,
        &assets[0].scene,
        &assets[0].model,
        &flood_traj,
        Intrinsics::from_fov(640, 640, 0.9),
    ) {
        Err(e) => println!("\nadmission control: flood session rejected ({e})"),
        // Fail fast: if this ever fits, run() would full-render 640×640
        // frames and blow the CI smoke-test budget.
        Ok(_) => panic!("admission control failed: flood session admitted"),
    }

    let sessions = server.session_count();
    let wall_start = std::time::Instant::now();
    let report = server.run();
    let wall_s = wall_start.elapsed().as_secs_f64();

    println!("\nper-session summary:");
    println!(
        "  {:<24} {:>11} {:>7} {:>10} {:>8} {:>6} {:>6}",
        "session", "qos", "frames", "mean lat", "psnr", "miss", "hits"
    );
    for s in &report.sessions {
        println!(
            "  {:<24} {:>11} {:>7} {:>8.2}ms {:>6.1}dB {:>6} {:>6}",
            s.name,
            s.qos.label(),
            s.frames,
            s.mean_latency_s * 1e3,
            s.mean_psnr_db,
            s.deadline_misses,
            s.cache_hits
        );
    }

    let total_hits: u64 = report.sessions.iter().map(|s| s.cache_hits).sum();
    println!("\naggregate:");
    println!("  sessions                  {sessions}");
    println!("  frames served             {}", report.frames);
    println!("  makespan                  {:.3} s", report.makespan_s);
    println!(
        "  throughput                {:.1} frames/s",
        report.throughput_fps
    );
    println!(
        "  p50 / p99 frame latency   {:.2} / {:.2} ms",
        report.p50_latency_s * 1e3,
        report.p99_latency_s * 1e3
    );
    println!(
        "  deadline misses           {} ({:.1}%)",
        report.deadline_misses,
        report.deadline_miss_rate * 100.0
    );
    println!(
        "  reference cache           {} hits / {} misses ({} pool jobs)",
        report.cache.hits, report.cache.misses, report.reference_jobs
    );
    println!(
        "  pool                      {} workers at {:.0}% utilization",
        report.workers,
        report.pool_utilization * 100.0
    );
    println!(
        "  host                      {} render thread(s): {} frames in {:.2} s wall clock ({:.1} frames/s)",
        render_threads,
        report.frames,
        wall_s,
        report.frames as f64 / wall_s.max(1e-9)
    );

    assert!(sessions >= 24, "swarm must run at least 24 sessions");
    assert!(
        total_hits >= 1,
        "expected at least one cross-session cache hit"
    );
    assert!(report.throughput_fps > 0.0);

    // Determinism oracle: every field here is simulated-time state, so the
    // line must be byte-identical at any host thread budget. CI runs the
    // swarm at 1 and 4 threads and diffs the two digests.
    let psnr_sum: f64 = report.sessions.iter().map(|s| s.mean_psnr_db).sum();
    println!(
        "digest: frames={} makespan={:.12} p50={:.12} p99={:.12} misses={} ref_jobs={} cache_hits={} psnr_sum={:.9}",
        report.frames,
        report.makespan_s,
        report.p50_latency_s,
        report.p99_latency_s,
        report.deadline_misses,
        report.reference_jobs,
        total_hits,
        psnr_sum
    );
    println!("\nOK: {sessions} sessions, {total_hits} cross-session cache hits");
}
