//! `serve_swarm` — a fleet of heterogeneous clients on one SoC pool.
//!
//! Spins up dozens of concurrent sessions across several library scenes —
//! head-tracked interactive viewers, standard screen viewers and best-effort
//! preview exporters, mixing the paper's Local and Remote scenarios — and
//! drains them through the `cicero-serve` batch scheduler. Co-located
//! sessions share reference renders through the pose-quantized cache.
//!
//! ```text
//! cargo run --release --example serve_swarm [-- THREADS] [--policy P] [--stream]
//!                                           [--shards N] [--shard-rate R]
//!                                           [--faults SEED] [--fault-rate R]
//!                                           [--trace T.json] [--metrics M.prom]
//!                                           [--report-json R.json]
//! ```
//!
//! - `THREADS` is the server's total host thread budget (default: the
//!   `RENDER_THREADS` environment variable, then 1): ready sessions step
//!   **concurrently** on the persistent render pool, with the budget
//!   partitioned across each batch. The service report is bit-identical at
//!   any budget — each `digest…:` line below is CI's determinism oracle
//!   between the 1-thread and 4-thread legs; only wall-clock moves.
//! - `--policy <default|affinity|degrade|prefetch|all>` selects the serving
//!   policy bundle (`all` runs each in turn over the same baked assets and
//!   cross-checks them: prefetch must strictly add cache hits without
//!   moving a pixel, degrade must admit the flood the others reject).
//! - `--stream` feeds every session pose-by-pose through the streaming
//!   ingestion API instead of whole trajectories — the digest must not
//!   change, which CI also diffs.
//! - `--shards <n>` serves the swarm through an n-shard [`Fleet`] instead of
//!   a bare [`FrameServer`]: sessions route to shards by scene hash, shards
//!   are heartbeat health-checked when faults are armed, and a dead shard's
//!   sessions fail over to survivors bit-identically. `--shards 1` with no
//!   faults prints a `digest` line byte-identical to the bare server's — CI
//!   diffs that too. Fleet runs add a `fleet_digest…:` line (shard health,
//!   migrations, availability), deterministic at any thread budget.
//! - `--faults <seed>` arms deterministic fault injection (worker crashes,
//!   stragglers, cache corruption; with `--stream` also pose stalls/drops;
//!   with `--shards` also shard crashes/brownouts) at the standard rate mix;
//!   `--fault-rate <r>` overrides the per-decision rate (`0` must be
//!   byte-identical to an un-armed run — CI diffs that too) and
//!   `--shard-rate <r>` overrides just the shard crash/brownout rates (the
//!   chaos leg's shard-kill knob). Chaos digests (`fault_digest…:` lines)
//!   are deterministic at any thread budget, exactly like the fault-free
//!   ones.
//! - `--trace <path>` / `--metrics <path>` enable the telemetry recorder and
//!   write a chrome-trace JSON (load in Perfetto / `chrome://tracing`) and a
//!   Prometheus text snapshot at exit. Telemetry is observe-only: the digest
//!   lines must be byte-identical with and without these flags (CI diffs
//!   them).
//! - `--report-json <path>` serializes the full [`ServiceReport`] (or
//!   [`FleetReport`] under `--shards`) of every policy run to JSON.

use cicero::pipeline::PipelineConfig;
use cicero::{Scenario, Variant};
use cicero_accel::pool::PoolConfig;
use cicero_field::{bake, GridConfig, GridModel};
use cicero_math::Intrinsics;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, AnalyticScene, Trajectory};
use cicero_serve::{
    FaultPlan, FaultReport, Fleet, FleetConfig, FleetReport, FrameServer, Policies, QosClass,
    ServeConfig, ServeError, ServiceReport, SessionId, SessionSpec, SessionSummary,
};
use cicero_telemetry as telemetry;

const SCENES: [&str; 4] = ["lego", "chair", "ship", "hotdog"];
const VIEWERS_PER_SCENE: usize = 6; // 4 scenes × 6 = 24 sessions
const FRAMES: usize = 12;
const FPS: f32 = 30.0;

struct SceneAssets {
    name: &'static str,
    scene: AnalyticScene,
    model: GridModel,
    orbit: Trajectory,
    handheld: Trajectory,
}

struct Args {
    render_threads: usize,
    policy: String,
    stream: bool,
    shards: Option<usize>,
    shard_rate: Option<f64>,
    fault_seed: Option<u64>,
    fault_rate: Option<f64>,
    trace: Option<String>,
    metrics: Option<String>,
    report_json: Option<String>,
}

impl Args {
    /// The armed fault plan, if any: `--faults <seed>` at the standard rate
    /// mix, scaled by `--fault-rate` when given, with the shard-fault rates
    /// overridden by `--shard-rate` when given.
    fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_seed.map(|seed| {
            let mut plan = match self.fault_rate {
                Some(rate) => FaultPlan::with_rate(seed, rate),
                None => FaultPlan::seeded(seed),
            };
            if let Some(rate) = self.shard_rate {
                plan.shard_crash_rate = rate;
                plan.shard_brownout_rate = rate;
            }
            plan
        })
    }
}

/// A CLI mistake is the *user's* error, not a server fault: explain and exit
/// instead of panicking with a backtrace.
fn usage(msg: &str) -> ! {
    eprintln!("serve_swarm: {msg}");
    eprintln!(
        "usage: serve_swarm [THREADS] [--policy P] [--stream] [--shards N] [--shard-rate R] [--faults SEED] [--fault-rate R] [--trace T] [--metrics M] [--report-json R]"
    );
    std::process::exit(2);
}

/// A runtime failure (a rejected serve call, an unwritable output file)
/// surfaces as a message and a nonzero exit — the serve API returns
/// [`ServeError`] everywhere precisely so a client binary never dies on a
/// panic.
fn fail(context: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("serve_swarm: {context}: {e}");
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = Args {
        render_threads: 0,
        policy: "default".into(),
        stream: false,
        shards: None,
        shard_rate: None,
        fault_seed: None,
        fault_rate: None,
        trace: None,
        metrics: None,
        report_json: None,
    };
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--policy" => {
                args.policy = it.next().unwrap_or_else(|| {
                    usage("--policy takes <default|affinity|degrade|prefetch|all>")
                });
            }
            "--stream" => args.stream = true,
            "--shards" => {
                let n: usize = it
                    .next()
                    .unwrap_or_else(|| usage("--shards takes a shard count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--shards must be a number"));
                if n == 0 {
                    usage("--shards must be at least 1");
                }
                args.shards = Some(n);
            }
            "--shard-rate" => {
                args.shard_rate = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--shard-rate takes a rate in [0,1]"))
                        .parse()
                        .unwrap_or_else(|_| usage("--shard-rate must be a number")),
                );
            }
            "--faults" => {
                args.fault_seed = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--faults takes a seed"))
                        .parse()
                        .unwrap_or_else(|_| usage("--faults seed must be a number")),
                );
            }
            "--fault-rate" => {
                args.fault_rate = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--fault-rate takes a rate in [0,1]"))
                        .parse()
                        .unwrap_or_else(|_| usage("--fault-rate must be a number")),
                );
            }
            "--trace" => {
                args.trace = Some(it.next().unwrap_or_else(|| usage("--trace takes a path")));
            }
            "--metrics" => {
                args.metrics = Some(it.next().unwrap_or_else(|| usage("--metrics takes a path")));
            }
            "--report-json" => {
                args.report_json = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--report-json takes a path")),
                );
            }
            other => {
                if threads.is_some() {
                    usage(&format!("unexpected argument {other}"));
                }
                threads = Some(
                    other
                        .parse()
                        .unwrap_or_else(|_| usage("THREADS must be a number")),
                );
            }
        }
    }
    if args.fault_rate.is_some() && args.fault_seed.is_none() {
        usage("--fault-rate requires --faults <seed>");
    }
    if args.shard_rate.is_some() && (args.fault_seed.is_none() || args.shards.is_none()) {
        usage("--shard-rate requires --shards <n> and --faults <seed>");
    }
    args.render_threads = threads
        .unwrap_or_else(cicero_field::env_render_threads)
        .max(1);
    args
}

fn policies_for(name: &str) -> Policies {
    Policies::by_name(name).unwrap_or_else(|| {
        usage(&format!(
            "unknown policy {name} (default|affinity|degrade|prefetch|all)"
        ))
    })
}

/// The serve backend behind one swarm run: a bare [`FrameServer`], or a
/// [`Fleet`] of them when `--shards` is given. Both expose the same
/// submission surface, so the swarm loop is written once.
enum Backend<'a> {
    Bare(Box<FrameServer<'a>>),
    Fleet(Box<Fleet<'a>>),
}

impl<'a> Backend<'a> {
    fn submit(
        &mut self,
        spec: SessionSpec,
        scene: &'a AnalyticScene,
        model: &'a GridModel,
        traj: &'a Trajectory,
        intrinsics: Intrinsics,
    ) -> Result<SessionId, ServeError> {
        match self {
            Backend::Bare(s) => s.submit(spec, scene, model, traj, intrinsics),
            Backend::Fleet(f) => f.submit(spec, scene, model, traj, intrinsics),
        }
    }

    fn submit_stream(
        &mut self,
        spec: SessionSpec,
        scene: &'a AnalyticScene,
        model: &'a GridModel,
        fps: f32,
        intrinsics: Intrinsics,
    ) -> Result<SessionId, ServeError> {
        match self {
            Backend::Bare(s) => s.submit_stream(spec, scene, model, fps, intrinsics),
            Backend::Fleet(f) => f.submit_stream(spec, scene, model, fps, intrinsics),
        }
    }

    fn push_pose(&mut self, id: SessionId, pose: cicero_math::Pose) -> Result<(), ServeError> {
        match self {
            Backend::Bare(s) => s.push_pose(id, pose),
            Backend::Fleet(f) => f.push_pose(id, pose),
        }
    }

    fn close_stream(&mut self, id: SessionId) -> Result<(), ServeError> {
        match self {
            Backend::Bare(s) => s.close_stream(id),
            Backend::Fleet(f) => f.close_stream(id),
        }
    }

    fn session_count(&self) -> usize {
        match self {
            Backend::Bare(s) => s.session_count(),
            Backend::Fleet(f) => f.session_count(),
        }
    }
}

struct SwarmRun {
    sessions: usize,
    /// The bare server's report, or shard 0's under `--shards 1` (which the
    /// fleet keeps byte-identical). Multi-shard runs report through `fleet`.
    report: ServiceReport,
    fleet: Option<FleetReport>,
    flood_rejected: bool,
    wall_s: f64,
}

impl SwarmRun {
    /// Every per-shard report of this run (one entry for a bare server).
    fn shard_reports(&self) -> &[ServiceReport] {
        match &self.fleet {
            Some(f) => &f.shards,
            None => std::slice::from_ref(&self.report),
        }
    }

    fn throughput_fps(&self) -> f64 {
        match &self.fleet {
            Some(f) => f.throughput_fps,
            None => self.report.throughput_fps,
        }
    }

    /// Fault/recovery accounting summed over every shard:
    /// `(injected, recoveries, availability)`. The availability is the
    /// fleet-wide figure (lost-session frames included) when sharded.
    fn fault_totals(&self) -> (u64, u64, f64) {
        let injected: u64 = self
            .shard_reports()
            .iter()
            .map(|r| r.faults.injected())
            .sum();
        let recoveries: u64 = self
            .shard_reports()
            .iter()
            .map(|r| r.faults.recoveries())
            .sum();
        let availability = match &self.fleet {
            Some(f) => f.availability,
            None => self.report.faults.availability,
        };
        (injected, recoveries, availability)
    }
}

fn run_swarm(
    assets: &[SceneAssets],
    policy: &str,
    render_threads: usize,
    stream: bool,
    faults: Option<FaultPlan>,
    shards: Option<usize>,
) -> SwarmRun {
    let cfg = ServeConfig {
        pool: PoolConfig {
            workers: 6,
            ..Default::default()
        },
        render_threads,
        policies: policies_for(policy),
        faults,
        ..Default::default()
    };
    let mut server = match shards {
        None => Backend::Bare(Box::new(FrameServer::new(cfg))),
        Some(n) => Backend::Fleet(Box::new(Fleet::new(FleetConfig {
            shards: n,
            base: cfg,
            ..Default::default()
        }))),
    };

    // Six viewers per scene: two interactive head-tracked clients on the
    // same handheld path (cache sharing), three standard orbit viewers, one
    // best-effort remote exporter.
    for (si, a) in assets.iter().enumerate() {
        for v in 0..VIEWERS_PER_SCENE {
            let (qos, scenario, traj): (QosClass, Scenario, &Trajectory) = match v {
                0 | 1 => (QosClass::Interactive, Scenario::Local, &a.handheld),
                2 | 3 => (QosClass::Standard, Scenario::Local, &a.orbit),
                4 => (QosClass::Standard, Scenario::Remote, &a.orbit),
                _ => (QosClass::BestEffort, Scenario::Remote, &a.orbit),
            };
            let spec = SessionSpec {
                name: format!("{}-{}-{}", a.name, qos.label(), v),
                scene_key: a.name.to_string(),
                qos,
                // Stagger connections a little within each scene.
                start_offset_s: si as f64 * 0.002 + v as f64 * 0.005,
                config: PipelineConfig {
                    variant: if v % 2 == 0 {
                        Variant::Cicero
                    } else {
                        Variant::SparwFs
                    },
                    scenario,
                    window: if qos == QosClass::Interactive { 4 } else { 6 },
                    march: MarchParams {
                        step: 0.04,
                        ..Default::default()
                    },
                    collect_quality: true,
                    collect_traffic: false,
                    ..Default::default()
                },
            };
            let k = Intrinsics::from_fov(32, 32, 0.9);
            if stream {
                // Streaming ingestion: the same client, feeding its poses
                // one at a time. Fully fed before the drain, so the report
                // must be bit-identical to whole-trajectory submission.
                let id = server
                    .submit_stream(spec, &a.scene, &a.model, traj.fps(), k)
                    .unwrap_or_else(|e| fail("swarm session rejected", e));
                for pose in traj.poses() {
                    server
                        .push_pose(id, *pose)
                        .unwrap_or_else(|e| fail("streamed pose refused", e));
                }
                server
                    .close_stream(id)
                    .unwrap_or_else(|e| fail("stream close refused", e));
            } else {
                server
                    .submit(spec, &a.scene, &a.model, traj, k)
                    .unwrap_or_else(|e| fail("swarm session rejected", e));
            }
        }
    }

    // Admission control in action: a 90 fps 640×640 baseline flood does not
    // fit next to the committed swarm. The default policy must reject it;
    // the load-adaptive QoS policy instead admits it *degraded* (the ladder
    // lands at 80×80), trading quality for admission. A multi-shard fleet
    // skips the probe: admission is per-shard, so splitting the swarm four
    // ways leaves headroom that could admit the flood at full resolution —
    // a capacity statement, not the admission-control story this probes
    // (and one whose 640×640 full renders would blow the CI smoke budget).
    let flood_traj = Trajectory::orbit(&assets[0].scene, FRAMES, 90.0);
    let flood_rejected = if matches!(shards, Some(n) if n > 1) {
        false
    } else {
        let flood = SessionSpec {
            name: "flood".into(),
            scene_key: "lego".into(),
            qos: QosClass::Interactive,
            start_offset_s: 0.0,
            config: PipelineConfig {
                variant: Variant::Baseline,
                ..Default::default()
            },
        };
        match server.submit(
            flood,
            &assets[0].scene,
            &assets[0].model,
            &flood_traj,
            Intrinsics::from_fov(640, 640, 0.9),
        ) {
            Err(e) => {
                println!("\n[{policy}] admission control: flood session rejected ({e})");
                true
            }
            Ok(id) => {
                // Only the degrading QoS policy may let the flood in — and
                // only in a reduced shape. Anything else blowing the budget
                // here would also blow the CI smoke-test budget with 640×640
                // fulls.
                assert_eq!(policy, "degrade", "flood admitted under {policy}");
                println!("\n[{policy}] admission control: flood session {id} admitted DEGRADED");
                false
            }
        }
    };

    let sessions = server.session_count();
    let wall_start = std::time::Instant::now();
    let (report, fleet) = match server {
        Backend::Bare(mut s) => (s.run(), None),
        Backend::Fleet(mut f) => {
            let fleet = f.run();
            (fleet.shards[0].clone(), Some(fleet))
        }
    };
    let wall_s = wall_start.elapsed().as_secs_f64();
    SwarmRun {
        sessions,
        report,
        fleet,
        flood_rejected,
        wall_s,
    }
}

fn total_hits(reports: &[ServiceReport]) -> u64 {
    reports
        .iter()
        .flat_map(|r| r.sessions.iter())
        .map(|s| s.cache_hits)
        .sum()
}

fn psnr_sum(reports: &[ServiceReport]) -> f64 {
    reports
        .iter()
        .flat_map(|r| r.sessions.iter())
        .filter(|s| s.name != "flood") // the degraded flood is extra
        .map(|s| s.mean_psnr_db)
        .sum()
}

fn digest_suffix(policy: &str) -> String {
    if policy == "default" {
        String::new()
    } else {
        format!("[{policy}]")
    }
}

fn print_session_table(sessions: &[SessionSummary]) {
    println!(
        "  {:<24} {:>11} {:>7} {:>10} {:>8} {:>6} {:>6}",
        "session", "qos", "frames", "mean lat", "psnr", "miss", "hits"
    );
    for s in sessions {
        println!(
            "  {:<24} {:>11} {:>7} {:>8.2}ms {:>6.1}dB {:>6} {:>6}",
            s.name,
            s.qos.label(),
            s.frames,
            s.mean_latency_s * 1e3,
            s.mean_psnr_db,
            s.deadline_misses,
            s.cache_hits
        );
    }
}

fn print_run(policy: &str, run: &SwarmRun, verbose: bool, render_threads: usize, armed: bool) {
    let report = &run.report;
    if verbose {
        println!("\nper-session summary:");
        print_session_table(&report.sessions);
    }

    println!("\n[{policy}] aggregate:");
    println!("  sessions                  {}", run.sessions);
    println!("  frames served             {}", report.frames);
    println!("  makespan                  {:.3} s", report.makespan_s);
    println!(
        "  throughput                {:.1} frames/s",
        report.throughput_fps
    );
    println!(
        "  p50 / p99 frame latency   {:.2} / {:.2} ms",
        report.p50_latency_s * 1e3,
        report.p99_latency_s * 1e3
    );
    println!(
        "  deadline misses           {} ({:.1}%)",
        report.deadline_misses,
        report.deadline_miss_rate * 100.0
    );
    println!(
        "  reference cache           {} hits / {} misses ({} pool jobs)",
        report.cache.hits, report.cache.misses, report.reference_jobs
    );
    if report.prefetch_jobs > 0 {
        println!(
            "  prefetch                  {} jobs: {} hits, {} wasted",
            report.prefetch_jobs, report.cache.prefetch_hits, report.cache.prefetch_wasted
        );
    }
    for d in &report.degradations {
        let (w0, w1) = d.degradation.window;
        let ((x0, y0), (x1, y1)) = d.degradation.resolution;
        println!(
            "  degraded                  {}: window {w0}→{w1}, {x0}×{y0}→{x1}×{y1}",
            d.name
        );
    }
    if armed {
        let f = &report.faults;
        println!(
            "  faults                    {} injected ({} crashes, {} stragglers, {} corruptions, {} stalls, {} drops)",
            f.injected(), f.worker_crashes, f.stragglers, f.cache_corruptions, f.pose_stalls, f.pose_drops
        );
        println!(
            "  recoveries                {} ({} retries, {} fallback warps, {} degraded re-renders, {} watchdog grants)",
            f.recoveries(), f.retries, f.fallback_warps, f.degraded_rerenders, f.watchdog_grants
        );
        println!(
            "  availability              {:.4} ({} unrecovered of {} frames, {:.3} s recovering)",
            f.availability, f.unrecovered, report.frames, f.time_to_recover_s
        );
    }
    println!(
        "  pool                      {} workers at {:.0}% utilization",
        report.workers,
        report.pool_utilization * 100.0
    );
    println!(
        "  host                      {} render thread(s): {} frames in {:.2} s wall clock ({:.1} frames/s)",
        render_threads,
        report.frames,
        run.wall_s,
        report.frames as f64 / run.wall_s.max(1e-9)
    );

    // Determinism oracle: every field here is simulated-time state, so the
    // line must be byte-identical at any host thread budget (and under
    // streaming ingestion). CI diffs these digests across 1 vs 4 threads
    // and stream vs whole-trajectory legs.
    let suffix = digest_suffix(policy);
    println!(
        "digest{suffix}: frames={} makespan={:.12} p50={:.12} p99={:.12} misses={} ref_jobs={} prefetch={} degraded={} cache_hits={} psnr_sum={:.9}",
        report.frames,
        report.makespan_s,
        report.p50_latency_s,
        report.p99_latency_s,
        report.deadline_misses,
        report.reference_jobs,
        report.prefetch_jobs,
        report.degradations.len(),
        total_hits(std::slice::from_ref(report)),
        psnr_sum(std::slice::from_ref(report))
    );
    // The chaos leg gets its own digest: same determinism contract, printed
    // only when an injector is armed so fault-free output stays byte-stable.
    if armed {
        print_fault_digest(
            &suffix,
            std::slice::from_ref(report),
            report.faults.availability,
        );
    }
}

/// The chaos digest over one or more shard reports: counters summed, the
/// availability supplied by the caller (per-shard for a bare run, fleet-wide
/// for a sharded one).
fn print_fault_digest(suffix: &str, reports: &[ServiceReport], availability: f64) {
    let sum =
        |field: fn(&FaultReport) -> u64| -> u64 { reports.iter().map(|r| field(&r.faults)).sum() };
    let ttr: f64 = reports.iter().map(|r| r.faults.time_to_recover_s).sum();
    println!(
        "fault_digest{suffix}: injected={} crashes={} stragglers={} corruptions={} stalls={} drops={} retries={} fallback_warps={} fallback_frames={} degraded_rerenders={} quarantines={} watchdog_grants={} unrecovered={} ttr={:.9} availability={:.6}",
        sum(FaultReport::injected),
        sum(|f| f.worker_crashes),
        sum(|f| f.stragglers),
        sum(|f| f.cache_corruptions),
        sum(|f| f.pose_stalls),
        sum(|f| f.pose_drops),
        sum(|f| f.retries),
        sum(|f| f.fallback_warps),
        sum(|f| f.fallback_warp_frames),
        sum(|f| f.degraded_rerenders),
        sum(|f| f.quarantines),
        sum(|f| f.watchdog_grants),
        sum(|f| f.unrecovered),
        ttr,
        availability,
    );
}

/// The multi-shard aggregate printout: fleet-wide figures from the
/// [`FleetReport`], per-shard digest inputs summed over the shard reports.
fn print_fleet_run(
    policy: &str,
    run: &SwarmRun,
    fleet: &FleetReport,
    verbose: bool,
    render_threads: usize,
    armed: bool,
) {
    if verbose {
        for (i, shard) in fleet.shards.iter().enumerate() {
            if shard.sessions.is_empty() {
                continue;
            }
            println!("\nshard {i} per-session summary:");
            print_session_table(&shard.sessions);
        }
    }

    println!("\n[{policy}] fleet aggregate:");
    println!(
        "  shards                    {} ({} alive at exit)",
        fleet.shards.len(),
        fleet.alive_shards
    );
    println!("  sessions                  {}", run.sessions);
    println!("  frames served             {}", fleet.frames);
    println!("  makespan                  {:.3} s", fleet.makespan_s);
    println!(
        "  throughput                {:.1} frames/s",
        fleet.throughput_fps
    );
    println!(
        "  p50 / p99 frame latency   {:.2} / {:.2} ms",
        fleet.p50_latency_s * 1e3,
        fleet.p99_latency_s * 1e3
    );
    println!(
        "  deadline misses           {} ({:.1}%)",
        fleet.deadline_misses,
        fleet.deadline_miss_rate * 100.0
    );
    if armed {
        println!(
            "  shard health              {} heartbeat misses, {} crashes, {} brownouts",
            fleet.heartbeat_misses, fleet.shard_crashes, fleet.shard_brownouts
        );
        for m in &fleet.migrations {
            if m.resumed_s >= 0.0 {
                println!(
                    "  failover                  {}: shard {} → {} at {:.3} s, resumed +{:.3} s",
                    m.name, m.from_shard, m.to_shard, m.at_s, m.time_to_resume_s
                );
            } else {
                println!(
                    "  failover                  {}: shard {} → {} at {:.3} s, never resumed",
                    m.name, m.from_shard, m.to_shard, m.at_s
                );
            }
        }
        if fleet.lost_sessions > 0 {
            println!(
                "  lost                      {} session(s), {} frame(s) — no survivor to adopt",
                fleet.lost_sessions, fleet.lost_frames
            );
        }
        println!("  availability              {:.4}", fleet.availability);
    }
    println!(
        "  host                      {} render thread(s): {} frames in {:.2} s wall clock ({:.1} frames/s)",
        render_threads,
        fleet.frames,
        run.wall_s,
        fleet.frames as f64 / run.wall_s.max(1e-9)
    );

    // Same determinism contract as the bare digest — the fleet report is
    // bit-identical at any host thread budget, so CI diffs these lines
    // across the 1- and 4-thread chaos legs.
    let suffix = digest_suffix(policy);
    println!(
        "digest{suffix}: frames={} makespan={:.12} p50={:.12} p99={:.12} misses={} ref_jobs={} prefetch={} degraded={} cache_hits={} psnr_sum={:.9}",
        fleet.frames,
        fleet.makespan_s,
        fleet.p50_latency_s,
        fleet.p99_latency_s,
        fleet.deadline_misses,
        fleet.shards.iter().map(|r| r.reference_jobs).sum::<u64>(),
        fleet.shards.iter().map(|r| r.prefetch_jobs).sum::<u64>(),
        fleet
            .shards
            .iter()
            .map(|r| r.degradations.len())
            .sum::<usize>(),
        total_hits(&fleet.shards),
        psnr_sum(&fleet.shards)
    );
    if armed {
        print_fault_digest(&suffix, &fleet.shards, fleet.availability);
    }
}

/// The fleet-health digest line: printed for every `--shards` run (any
/// count), bit-stable at any thread budget like the others.
fn print_fleet_digest(policy: &str, fleet: &FleetReport) {
    let resumed = fleet
        .migrations
        .iter()
        .filter(|m| m.resumed_s >= 0.0)
        .count();
    let mean_ttr = if resumed > 0 {
        fleet
            .migrations
            .iter()
            .filter(|m| m.time_to_resume_s >= 0.0)
            .map(|m| m.time_to_resume_s)
            .sum::<f64>()
            / resumed as f64
    } else {
        0.0
    };
    let suffix = digest_suffix(policy);
    println!(
        "fleet_digest{suffix}: shards={} alive={} crashes={} brownouts={} hb_misses={} migrations={} resumed={} lost_sessions={} lost_frames={} mean_ttr={:.9} availability={:.6}",
        fleet.shards.len(),
        fleet.alive_shards,
        fleet.shard_crashes,
        fleet.shard_brownouts,
        fleet.heartbeat_misses,
        fleet.migrations.len(),
        resumed,
        fleet.lost_sessions,
        fleet.lost_frames,
        mean_ttr,
        fleet.availability,
    );
}

fn main() {
    let args = parse_args();
    if args.trace.is_some() || args.metrics.is_some() {
        // A swarm drain emits far more events than the default ring holds;
        // size the per-thread rings to retain the whole run.
        telemetry::enable_with_capacity(1 << 16);
    }
    let policies: Vec<&str> = match args.policy.as_str() {
        "all" => vec!["default", "affinity", "degrade", "prefetch"],
        one => vec![one],
    };
    let faults = args.fault_plan();
    println!("==========================================================");
    println!(
        "serve_swarm: {} sessions over {} scenes, {} render thread(s), policies {:?}{}{}{}",
        SCENES.len() * VIEWERS_PER_SCENE,
        SCENES.len(),
        args.render_threads,
        policies,
        match args.shards {
            Some(n) => format!(", {n}-shard fleet"),
            None => String::new(),
        },
        if args.stream {
            ", streaming ingestion"
        } else {
            ""
        },
        match &faults {
            Some(p) => format!(
                ", faults seed {} rate {} shard rate {}",
                p.seed, p.crash_rate, p.shard_crash_rate
            ),
            None => String::new(),
        }
    );
    println!("==========================================================");

    let assets: Vec<SceneAssets> = SCENES
        .iter()
        .map(|&name| {
            let scene = library::scene_by_name(name).unwrap();
            let model = bake::bake_grid(
                &scene,
                &GridConfig {
                    resolution: 28,
                    ..Default::default()
                },
            );
            let orbit = Trajectory::orbit(&scene, FRAMES, FPS);
            let handheld = Trajectory::handheld(&scene, FRAMES, FPS, 7);
            SceneAssets {
                name,
                scene,
                model,
                orbit,
                handheld,
            }
        })
        .collect();

    let mut runs: Vec<(&str, SwarmRun)> = Vec::new();
    for (i, policy) in policies.iter().enumerate() {
        let run = run_swarm(
            &assets,
            policy,
            args.render_threads,
            args.stream,
            faults,
            args.shards,
        );
        assert!(run.sessions >= 24, "swarm must run at least 24 sessions");
        assert!(
            total_hits(run.shard_reports()) >= 1,
            "expected at least one cross-session cache hit"
        );
        assert!(run.throughput_fps() > 0.0);
        if faults.is_some() && args.fault_rate.is_none() && args.shard_rate.is_none() {
            // Acceptance at the standard chaos rate: faults actually fired,
            // the recovery ladder engaged, and the fleet stayed available —
            // for sharded runs the availability is fleet-wide, lost-session
            // frames included.
            let (injected, recoveries, availability) = run.fault_totals();
            assert!(injected > 0, "[{policy}] armed plan never fired");
            assert!(recoveries > 0, "[{policy}] no recovery engaged");
            assert!(
                availability >= 0.99,
                "[{policy}] availability {availability} < 0.99"
            );
        }
        match &run.fleet {
            Some(fleet) if fleet.shards.len() > 1 => {
                print_fleet_run(
                    policy,
                    &run,
                    fleet,
                    i == 0,
                    args.render_threads,
                    faults.is_some(),
                );
            }
            _ => print_run(policy, &run, i == 0, args.render_threads, faults.is_some()),
        }
        if let Some(fleet) = &run.fleet {
            print_fleet_digest(policy, fleet);
        }
        runs.push((policy, run));
    }

    // Cross-policy acceptance checks (only meaningful with several runs).
    // Pixel- and hit-level equalities assume fault-free serving: injected
    // crashes and corruptions legitimately move reference economics, so the
    // chaos leg keeps only the admission-shape checks — and multi-shard
    // fleets skip the flood probe entirely (admission is per-shard).
    let multi_shard = matches!(args.shards, Some(n) if n > 1);
    if let Some((_, default)) = runs.iter().find(|(p, _)| *p == "default") {
        for (policy, run) in &runs {
            match *policy {
                "prefetch" if faults.is_none() => {
                    // Speculation must strictly add cache hits…
                    assert!(
                        total_hits(run.shard_reports()) > total_hits(default.shard_reports()),
                        "prefetch hits {} ≤ default {}",
                        total_hits(run.shard_reports()),
                        total_hits(default.shard_reports())
                    );
                    assert!(run.shard_reports().iter().any(|r| r.prefetch_jobs > 0));
                    // …without moving a single rendered pixel.
                    assert_eq!(
                        psnr_sum(run.shard_reports()),
                        psnr_sum(default.shard_reports()),
                        "prefetch changed rendered frames"
                    );
                }
                "degrade" if !multi_shard => {
                    // The flood the default rejected is admitted, degraded.
                    assert!(default.flood_rejected);
                    assert!(!run.flood_rejected, "degrade policy still rejected");
                    assert!(run
                        .shard_reports()
                        .iter()
                        .any(|r| !r.degradations.is_empty()));
                }
                _ => {}
            }
        }
        println!("\ncross-policy checks OK");
    }

    if let Some(path) = &args.report_json {
        let value = serde::Value::Object(
            runs.iter()
                .map(|(policy, run)| {
                    let report = match &run.fleet {
                        Some(fleet) => serde::Serialize::to_value(fleet),
                        None => serde::Serialize::to_value(&run.report),
                    };
                    (policy.to_string(), report)
                })
                .collect(),
        );
        let json =
            serde_json::to_string_pretty(&value).unwrap_or_else(|e| fail("serialize report", e));
        std::fs::write(path, json).unwrap_or_else(|e| fail("write report json", e));
        println!("report json -> {path}");
    }
    if let Some(path) = &args.trace {
        telemetry::write_chrome_trace(std::path::Path::new(path))
            .unwrap_or_else(|e| fail("write chrome trace", e));
        println!(
            "chrome trace ({} events) -> {path}",
            telemetry::event_count()
        );
    }
    if let Some(path) = &args.metrics {
        telemetry::write_prometheus(std::path::Path::new(path))
            .unwrap_or_else(|e| fail("write prometheus metrics", e));
        println!("prometheus metrics -> {path}");
    }

    let (_, first) = &runs[0];
    println!(
        "\nOK: {} sessions, {} cross-session cache hits",
        first.sessions,
        total_hits(first.shard_reports())
    );
}
