//! `serve_swarm` — a fleet of heterogeneous clients on one SoC pool.
//!
//! Spins up dozens of concurrent sessions across several library scenes —
//! head-tracked interactive viewers, standard screen viewers and best-effort
//! preview exporters, mixing the paper's Local and Remote scenarios — and
//! drains them through the `cicero-serve` batch scheduler. Co-located
//! sessions share reference renders through the pose-quantized cache.
//!
//! ```text
//! cargo run --release --example serve_swarm [-- THREADS] [--policy P] [--stream]
//!                                           [--faults SEED] [--fault-rate R]
//!                                           [--trace T.json] [--metrics M.prom]
//!                                           [--report-json R.json]
//! ```
//!
//! - `THREADS` is the server's total host thread budget (default: the
//!   `RENDER_THREADS` environment variable, then 1): ready sessions step
//!   **concurrently** on the persistent render pool, with the budget
//!   partitioned across each batch. The service report is bit-identical at
//!   any budget — each `digest…:` line below is CI's determinism oracle
//!   between the 1-thread and 4-thread legs; only wall-clock moves.
//! - `--policy <default|affinity|degrade|prefetch|all>` selects the serving
//!   policy bundle (`all` runs each in turn over the same baked assets and
//!   cross-checks them: prefetch must strictly add cache hits without
//!   moving a pixel, degrade must admit the flood the others reject).
//! - `--stream` feeds every session pose-by-pose through the streaming
//!   ingestion API instead of whole trajectories — the digest must not
//!   change, which CI also diffs.
//! - `--faults <seed>` arms deterministic fault injection (worker crashes,
//!   stragglers, cache corruption; with `--stream` also pose stalls/drops)
//!   at the standard rate mix; `--fault-rate <r>` overrides the per-decision
//!   rate (`0` must be byte-identical to an un-armed run — CI diffs that
//!   too). Chaos digests (`fault_digest…:` lines) are deterministic at any
//!   thread budget, exactly like the fault-free ones.
//! - `--trace <path>` / `--metrics <path>` enable the telemetry recorder and
//!   write a chrome-trace JSON (load in Perfetto / `chrome://tracing`) and a
//!   Prometheus text snapshot at exit. Telemetry is observe-only: the digest
//!   lines must be byte-identical with and without these flags (CI diffs
//!   them).
//! - `--report-json <path>` serializes the full [`ServiceReport`] of every
//!   policy run to JSON.

use cicero::pipeline::PipelineConfig;
use cicero::{Scenario, Variant};
use cicero_accel::pool::PoolConfig;
use cicero_field::{bake, GridConfig, GridModel};
use cicero_math::Intrinsics;
use cicero_scene::volume::MarchParams;
use cicero_scene::{library, AnalyticScene, Trajectory};
use cicero_serve::{
    FaultPlan, FrameServer, Policies, QosClass, ServeConfig, ServiceReport, SessionSpec,
};
use cicero_telemetry as telemetry;

const SCENES: [&str; 4] = ["lego", "chair", "ship", "hotdog"];
const VIEWERS_PER_SCENE: usize = 6; // 4 scenes × 6 = 24 sessions
const FRAMES: usize = 12;
const FPS: f32 = 30.0;

struct SceneAssets {
    name: &'static str,
    scene: AnalyticScene,
    model: GridModel,
    orbit: Trajectory,
    handheld: Trajectory,
}

struct Args {
    render_threads: usize,
    policy: String,
    stream: bool,
    fault_seed: Option<u64>,
    fault_rate: Option<f64>,
    trace: Option<String>,
    metrics: Option<String>,
    report_json: Option<String>,
}

impl Args {
    /// The armed fault plan, if any: `--faults <seed>` at the standard rate
    /// mix, scaled by `--fault-rate` when given.
    fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_seed.map(|seed| match self.fault_rate {
            Some(rate) => FaultPlan::with_rate(seed, rate),
            None => FaultPlan::seeded(seed),
        })
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        render_threads: 0,
        policy: "default".into(),
        stream: false,
        fault_seed: None,
        fault_rate: None,
        trace: None,
        metrics: None,
        report_json: None,
    };
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--policy" => {
                args.policy = it
                    .next()
                    .expect("--policy takes <default|affinity|degrade|prefetch|all>");
            }
            "--stream" => args.stream = true,
            "--faults" => {
                args.fault_seed = Some(
                    it.next()
                        .expect("--faults takes a seed")
                        .parse()
                        .expect("--faults seed must be a number"),
                );
            }
            "--fault-rate" => {
                args.fault_rate = Some(
                    it.next()
                        .expect("--fault-rate takes a rate in [0,1]")
                        .parse()
                        .expect("--fault-rate must be a number"),
                );
            }
            "--trace" => args.trace = Some(it.next().expect("--trace takes a path")),
            "--metrics" => args.metrics = Some(it.next().expect("--metrics takes a path")),
            "--report-json" => {
                args.report_json = Some(it.next().expect("--report-json takes a path"));
            }
            other => {
                assert!(
                    threads.is_none(),
                    "usage: serve_swarm [THREADS] [--policy P] [--stream] [--faults SEED] [--fault-rate R] [--trace T] [--metrics M] [--report-json R]"
                );
                threads = Some(other.parse().expect("THREADS must be a number"));
            }
        }
    }
    assert!(
        args.fault_rate.is_none() || args.fault_seed.is_some(),
        "--fault-rate requires --faults <seed>"
    );
    args.render_threads = threads
        .unwrap_or_else(cicero_field::env_render_threads)
        .max(1);
    args
}

fn policies_for(name: &str) -> Policies {
    Policies::by_name(name)
        .unwrap_or_else(|| panic!("unknown policy {name} (default|affinity|degrade|prefetch|all)"))
}

struct SwarmRun {
    sessions: usize,
    report: ServiceReport,
    flood_rejected: bool,
    wall_s: f64,
}

fn run_swarm(
    assets: &[SceneAssets],
    policy: &str,
    render_threads: usize,
    stream: bool,
    faults: Option<FaultPlan>,
) -> SwarmRun {
    let mut server = FrameServer::new(ServeConfig {
        pool: PoolConfig {
            workers: 6,
            ..Default::default()
        },
        render_threads,
        policies: policies_for(policy),
        faults,
        ..Default::default()
    });

    // Six viewers per scene: two interactive head-tracked clients on the
    // same handheld path (cache sharing), three standard orbit viewers, one
    // best-effort remote exporter.
    for (si, a) in assets.iter().enumerate() {
        for v in 0..VIEWERS_PER_SCENE {
            let (qos, scenario, traj): (QosClass, Scenario, &Trajectory) = match v {
                0 | 1 => (QosClass::Interactive, Scenario::Local, &a.handheld),
                2 | 3 => (QosClass::Standard, Scenario::Local, &a.orbit),
                4 => (QosClass::Standard, Scenario::Remote, &a.orbit),
                _ => (QosClass::BestEffort, Scenario::Remote, &a.orbit),
            };
            let spec = SessionSpec {
                name: format!("{}-{}-{}", a.name, qos.label(), v),
                scene_key: a.name.to_string(),
                qos,
                // Stagger connections a little within each scene.
                start_offset_s: si as f64 * 0.002 + v as f64 * 0.005,
                config: PipelineConfig {
                    variant: if v % 2 == 0 {
                        Variant::Cicero
                    } else {
                        Variant::SparwFs
                    },
                    scenario,
                    window: if qos == QosClass::Interactive { 4 } else { 6 },
                    march: MarchParams {
                        step: 0.04,
                        ..Default::default()
                    },
                    collect_quality: true,
                    collect_traffic: false,
                    ..Default::default()
                },
            };
            let k = Intrinsics::from_fov(32, 32, 0.9);
            if stream {
                // Streaming ingestion: the same client, feeding its poses
                // one at a time. Fully fed before the drain, so the report
                // must be bit-identical to whole-trajectory submission.
                let id = server
                    .submit_stream(spec, &a.scene, &a.model, traj.fps(), k)
                    .expect("swarm session admitted");
                for pose in traj.poses() {
                    server.push_pose(id, *pose).expect("streamed pose");
                }
                server.close_stream(id).expect("stream closed");
            } else {
                server
                    .submit(spec, &a.scene, &a.model, traj, k)
                    .expect("swarm session admitted");
            }
        }
    }

    // Admission control in action: a 90 fps 640×640 baseline flood does not
    // fit next to the committed swarm. The default policy must reject it;
    // the load-adaptive QoS policy instead admits it *degraded* (the ladder
    // lands at 80×80), trading quality for admission.
    let flood = SessionSpec {
        name: "flood".into(),
        scene_key: "lego".into(),
        qos: QosClass::Interactive,
        start_offset_s: 0.0,
        config: PipelineConfig {
            variant: Variant::Baseline,
            ..Default::default()
        },
    };
    let flood_traj = Trajectory::orbit(&assets[0].scene, FRAMES, 90.0);
    let flood_rejected = match server.submit(
        flood,
        &assets[0].scene,
        &assets[0].model,
        &flood_traj,
        Intrinsics::from_fov(640, 640, 0.9),
    ) {
        Err(e) => {
            println!("\n[{policy}] admission control: flood session rejected ({e})");
            true
        }
        Ok(id) => {
            // Only the degrading QoS policy may let the flood in — and only
            // in a reduced shape. Anything else blowing the budget here
            // would also blow the CI smoke-test budget with 640×640 fulls.
            assert_eq!(policy, "degrade", "flood admitted under {policy}");
            println!("\n[{policy}] admission control: flood session {id} admitted DEGRADED");
            false
        }
    };

    let sessions = server.session_count();
    let wall_start = std::time::Instant::now();
    let report = server.run();
    let wall_s = wall_start.elapsed().as_secs_f64();
    SwarmRun {
        sessions,
        report,
        flood_rejected,
        wall_s,
    }
}

fn total_hits(report: &ServiceReport) -> u64 {
    report.sessions.iter().map(|s| s.cache_hits).sum()
}

fn psnr_sum(report: &ServiceReport) -> f64 {
    report
        .sessions
        .iter()
        .filter(|s| s.name != "flood") // the degraded flood is extra
        .map(|s| s.mean_psnr_db)
        .sum()
}

fn print_run(policy: &str, run: &SwarmRun, verbose: bool, render_threads: usize, armed: bool) {
    let report = &run.report;
    if verbose {
        println!("\nper-session summary:");
        println!(
            "  {:<24} {:>11} {:>7} {:>10} {:>8} {:>6} {:>6}",
            "session", "qos", "frames", "mean lat", "psnr", "miss", "hits"
        );
        for s in &report.sessions {
            println!(
                "  {:<24} {:>11} {:>7} {:>8.2}ms {:>6.1}dB {:>6} {:>6}",
                s.name,
                s.qos.label(),
                s.frames,
                s.mean_latency_s * 1e3,
                s.mean_psnr_db,
                s.deadline_misses,
                s.cache_hits
            );
        }
    }

    println!("\n[{policy}] aggregate:");
    println!("  sessions                  {}", run.sessions);
    println!("  frames served             {}", report.frames);
    println!("  makespan                  {:.3} s", report.makespan_s);
    println!(
        "  throughput                {:.1} frames/s",
        report.throughput_fps
    );
    println!(
        "  p50 / p99 frame latency   {:.2} / {:.2} ms",
        report.p50_latency_s * 1e3,
        report.p99_latency_s * 1e3
    );
    println!(
        "  deadline misses           {} ({:.1}%)",
        report.deadline_misses,
        report.deadline_miss_rate * 100.0
    );
    println!(
        "  reference cache           {} hits / {} misses ({} pool jobs)",
        report.cache.hits, report.cache.misses, report.reference_jobs
    );
    if report.prefetch_jobs > 0 {
        println!(
            "  prefetch                  {} jobs: {} hits, {} wasted",
            report.prefetch_jobs, report.cache.prefetch_hits, report.cache.prefetch_wasted
        );
    }
    for d in &report.degradations {
        let (w0, w1) = d.degradation.window;
        let ((x0, y0), (x1, y1)) = d.degradation.resolution;
        println!(
            "  degraded                  {}: window {w0}→{w1}, {x0}×{y0}→{x1}×{y1}",
            d.name
        );
    }
    if armed {
        let f = &report.faults;
        println!(
            "  faults                    {} injected ({} crashes, {} stragglers, {} corruptions, {} stalls, {} drops)",
            f.injected(), f.worker_crashes, f.stragglers, f.cache_corruptions, f.pose_stalls, f.pose_drops
        );
        println!(
            "  recoveries                {} ({} retries, {} fallback warps, {} degraded re-renders, {} watchdog grants)",
            f.recoveries(), f.retries, f.fallback_warps, f.degraded_rerenders, f.watchdog_grants
        );
        println!(
            "  availability              {:.4} ({} unrecovered of {} frames, {:.3} s recovering)",
            f.availability, f.unrecovered, report.frames, f.time_to_recover_s
        );
    }
    println!(
        "  pool                      {} workers at {:.0}% utilization",
        report.workers,
        report.pool_utilization * 100.0
    );
    println!(
        "  host                      {} render thread(s): {} frames in {:.2} s wall clock ({:.1} frames/s)",
        render_threads,
        report.frames,
        run.wall_s,
        report.frames as f64 / run.wall_s.max(1e-9)
    );

    // Determinism oracle: every field here is simulated-time state, so the
    // line must be byte-identical at any host thread budget (and under
    // streaming ingestion). CI diffs these digests across 1 vs 4 threads
    // and stream vs whole-trajectory legs.
    let suffix = if policy == "default" {
        String::new()
    } else {
        format!("[{policy}]")
    };
    println!(
        "digest{suffix}: frames={} makespan={:.12} p50={:.12} p99={:.12} misses={} ref_jobs={} prefetch={} degraded={} cache_hits={} psnr_sum={:.9}",
        report.frames,
        report.makespan_s,
        report.p50_latency_s,
        report.p99_latency_s,
        report.deadline_misses,
        report.reference_jobs,
        report.prefetch_jobs,
        report.degradations.len(),
        total_hits(report),
        psnr_sum(report)
    );
    // The chaos leg gets its own digest: same determinism contract, printed
    // only when an injector is armed so fault-free output stays byte-stable.
    if armed {
        let f = &report.faults;
        println!(
            "fault_digest{suffix}: injected={} crashes={} stragglers={} corruptions={} stalls={} drops={} retries={} fallback_warps={} fallback_frames={} degraded_rerenders={} quarantines={} watchdog_grants={} unrecovered={} ttr={:.9} availability={:.6}",
            f.injected(),
            f.worker_crashes,
            f.stragglers,
            f.cache_corruptions,
            f.pose_stalls,
            f.pose_drops,
            f.retries,
            f.fallback_warps,
            f.fallback_warp_frames,
            f.degraded_rerenders,
            f.quarantines,
            f.watchdog_grants,
            f.unrecovered,
            f.time_to_recover_s,
            f.availability,
        );
    }
}

fn main() {
    let args = parse_args();
    if args.trace.is_some() || args.metrics.is_some() {
        // A swarm drain emits far more events than the default ring holds;
        // size the per-thread rings to retain the whole run.
        telemetry::enable_with_capacity(1 << 16);
    }
    let policies: Vec<&str> = match args.policy.as_str() {
        "all" => vec!["default", "affinity", "degrade", "prefetch"],
        one => vec![one],
    };
    let faults = args.fault_plan();
    println!("==========================================================");
    println!(
        "serve_swarm: {} sessions over {} scenes, {} render thread(s), policies {:?}{}{}",
        SCENES.len() * VIEWERS_PER_SCENE,
        SCENES.len(),
        args.render_threads,
        policies,
        if args.stream {
            ", streaming ingestion"
        } else {
            ""
        },
        match &faults {
            Some(p) => format!(", faults seed {} rate {}", p.seed, p.crash_rate),
            None => String::new(),
        }
    );
    println!("==========================================================");

    let assets: Vec<SceneAssets> = SCENES
        .iter()
        .map(|&name| {
            let scene = library::scene_by_name(name).unwrap();
            let model = bake::bake_grid(
                &scene,
                &GridConfig {
                    resolution: 28,
                    ..Default::default()
                },
            );
            let orbit = Trajectory::orbit(&scene, FRAMES, FPS);
            let handheld = Trajectory::handheld(&scene, FRAMES, FPS, 7);
            SceneAssets {
                name,
                scene,
                model,
                orbit,
                handheld,
            }
        })
        .collect();

    let mut runs: Vec<(&str, SwarmRun)> = Vec::new();
    for (i, policy) in policies.iter().enumerate() {
        let run = run_swarm(&assets, policy, args.render_threads, args.stream, faults);
        assert!(run.sessions >= 24, "swarm must run at least 24 sessions");
        assert!(
            total_hits(&run.report) >= 1,
            "expected at least one cross-session cache hit"
        );
        assert!(run.report.throughput_fps > 0.0);
        if faults.is_some() && args.fault_rate.is_none() {
            // Acceptance at the standard chaos rate: faults actually fired,
            // the recovery ladder engaged, and the fleet stayed available.
            let f = &run.report.faults;
            assert!(f.injected() > 0, "[{policy}] armed plan never fired");
            assert!(f.recoveries() > 0, "[{policy}] no recovery engaged");
            assert!(
                f.availability >= 0.99,
                "[{policy}] availability {} < 0.99",
                f.availability
            );
        }
        print_run(policy, &run, i == 0, args.render_threads, faults.is_some());
        runs.push((policy, run));
    }

    // Cross-policy acceptance checks (only meaningful with several runs).
    // Pixel- and hit-level equalities assume fault-free serving: injected
    // crashes and corruptions legitimately move reference economics, so the
    // chaos leg keeps only the admission-shape checks.
    if let Some((_, default)) = runs.iter().find(|(p, _)| *p == "default") {
        for (policy, run) in &runs {
            match *policy {
                "prefetch" if faults.is_none() => {
                    // Speculation must strictly add cache hits…
                    assert!(
                        total_hits(&run.report) > total_hits(&default.report),
                        "prefetch hits {} ≤ default {}",
                        total_hits(&run.report),
                        total_hits(&default.report)
                    );
                    assert!(run.report.prefetch_jobs > 0);
                    // …without moving a single rendered pixel.
                    assert_eq!(
                        psnr_sum(&run.report),
                        psnr_sum(&default.report),
                        "prefetch changed rendered frames"
                    );
                }
                "degrade" => {
                    // The flood the default rejected is admitted, degraded.
                    assert!(default.flood_rejected);
                    assert!(!run.flood_rejected, "degrade policy still rejected");
                    assert!(!run.report.degradations.is_empty());
                }
                _ => {}
            }
        }
        println!("\ncross-policy checks OK");
    }

    if let Some(path) = &args.report_json {
        let value = serde::Value::Object(
            runs.iter()
                .map(|(policy, run)| (policy.to_string(), serde::Serialize::to_value(&run.report)))
                .collect(),
        );
        let json = serde_json::to_string_pretty(&value).expect("serialize report");
        std::fs::write(path, json).expect("write report json");
        println!("report json -> {path}");
    }
    if let Some(path) = &args.trace {
        telemetry::write_chrome_trace(std::path::Path::new(path)).expect("write chrome trace");
        println!(
            "chrome trace ({} events) -> {path}",
            telemetry::event_count()
        );
    }
    if let Some(path) = &args.metrics {
        telemetry::write_prometheus(std::path::Path::new(path)).expect("write prometheus metrics");
        println!("prometheus metrics -> {path}");
    }

    let (_, first) = &runs[0];
    println!(
        "\nOK: {} sessions, {} cross-session cache hits",
        first.sessions,
        total_hits(&first.report)
    );
}
