//! Quickstart: bake a NeRF model from a procedural scene, render one frame
//! through the full Cicero pipeline and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cicero::pipeline::{run_pipeline, PipelineConfig};
use cicero::Variant;
use cicero_field::{bake, GridConfig};
use cicero_math::Intrinsics;
use cicero_scene::{library, Trajectory};

fn main() {
    // 1. A scene: procedural stand-in for a Synthetic-NeRF capture.
    let scene = library::scene_by_name("lego").expect("library scene");
    println!("scene: {} ({} objects)", scene.name, scene.objects().len());

    // 2. A model: bake a DirectVoxGO-like dense grid from the scene
    //    (training substitute — see DESIGN.md §3).
    let model = bake::bake_grid(
        &scene,
        &GridConfig {
            resolution: 64,
            ..Default::default()
        },
    );
    println!(
        "model: DirectVoxGO-like, {:.1} MB of features",
        cicero_field::NerfModel::memory_footprint_bytes(&model) as f64 / 1e6
    );

    // 3. A short camera trajectory (VR-style 30 FPS orbit).
    let traj = Trajectory::orbit(&scene, 10, 30.0);
    let intrinsics = Intrinsics::from_fov(96, 96, 0.9);

    // 4. Run the baseline and the full Cicero pipeline.
    let base_cfg = PipelineConfig {
        variant: Variant::Baseline,
        ..Default::default()
    };
    let cicero_cfg = PipelineConfig {
        variant: Variant::Cicero,
        window: 8,
        ..Default::default()
    };
    let base = run_pipeline(&scene, &model, &traj, intrinsics, &base_cfg);
    let cicero = run_pipeline(&scene, &model, &traj, intrinsics, &cicero_cfg);

    println!("\n              baseline      cicero");
    println!(
        "mean FPS      {:>8.2}    {:>8.2}",
        base.mean_fps(),
        cicero.mean_fps()
    );
    println!(
        "energy/frame  {:>7.3}J    {:>7.3}J",
        base.mean_energy(),
        cicero.mean_energy()
    );
    println!(
        "PSNR          {:>7.2}dB   {:>7.2}dB",
        base.mean_psnr(),
        cicero.mean_psnr()
    );
    println!(
        "\ncicero warped {:.1}% of pixels, sparse-rendered {:.1}%",
        cicero.warp_totals.overlap_fraction() * 100.0,
        cicero.warp_totals.render_fraction() * 100.0
    );
    println!(
        "speedup {:.1}x, energy saving {:.1}x",
        cicero.mean_fps() / base.mean_fps(),
        base.mean_energy() / cicero.mean_energy()
    );
}
